#include "server/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/failpoint.h"
#include "server/protocol.h"

namespace eblocks::server {

namespace {

namespace fp = core::failpoint;

using Clock = std::chrono::steady_clock;

bool setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

EventLoop::EventLoop() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wakeRead_ = fds[0];
    wakeWrite_ = fds[1];
    setNonBlocking(wakeRead_);
    setNonBlocking(wakeWrite_);
  }
}

EventLoop::~EventLoop() {
  for (auto& [id, conn] : conns_)
    if (conn.fd >= 0) ::close(conn.fd);
  conns_.clear();
  if (listenFd_ >= 0) ::close(listenFd_);
  if (wakeRead_ >= 0) ::close(wakeRead_);
  if (wakeWrite_ >= 0) ::close(wakeWrite_);
}

bool EventLoop::listenOn(const std::string& host, int port,
                         std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    if (listenFd_ >= 0) {
      ::close(listenFd_);
      listenFd_ = -1;
    }
    return false;
  };
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "invalid listen address '" + host + "'";
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return fail("bind " + host + ":" + std::to_string(port));
  if (::listen(listenFd_, 128) != 0) return fail("listen");
  if (!setNonBlocking(listenFd_)) return fail("fcntl");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    return fail("getsockname");
  port_ = static_cast<int>(ntohs(bound.sin_port));
  return true;
}

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(postedMutex_);
    posted_.push_back(std::move(fn));
  }
  // A full pipe means wake bytes are already pending, so the loop is
  // guaranteed to wake and drain the queue; EAGAIN is therefore benign.
  // EINTR is not: a dropped wake byte would strand the posted closure
  // until the next 1 s tick, so retry until the write lands or the pipe
  // reports full.
  const char byte = 'w';
  ssize_t n;
  do {
    n = ::write(wakeWrite_, &byte, 1);
  } while (n < 0 && errno == EINTR);
}

void EventLoop::requestStop() { stopping_ = true; }

void EventLoop::closeListener() {
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
}

void EventLoop::send(std::uint64_t conn, std::string bytes) {
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  it->second.out.append(bytes);
  handleWritable(conn);
}

void EventLoop::closeAfterFlush(std::uint64_t conn) {
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  it->second.closing = true;
  if (it->second.out.empty()) removeConn(conn, true);
}

void EventLoop::closeNow(std::uint64_t conn) { removeConn(conn, true); }

void EventLoop::removeConn(std::uint64_t id, bool notify) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
  if (notify && callbacks_.onClosed) callbacks_.onClosed(id);
}

void EventLoop::acceptPending() {
  // One injected fault per wakeup: a simulated transient errno takes the
  // same branch the real one would, then the next iteration accepts for
  // real (the listener is still readable, so nothing is lost).
  bool injected = false;
  for (;;) {
    int fd = -1;
    if (!injected) {
      if (const fp::Hit hit = fp::check(fp::name::kServerAccept);
          hit.mode == fp::Mode::kError) {
        injected = true;
        errno = hit.arg != 0 ? static_cast<int>(hit.arg) : EINTR;
      } else {
        fd = ::accept(listenFd_, nullptr, nullptr);
      }
    } else {
      fd = ::accept(listenFd_, nullptr, nullptr);
    }
    if (fd < 0) {
      // ECONNABORTED means *that* connection died in the backlog; the
      // next one may be fine, so keep draining like EINTR.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN / transient error: poll again later
    }
    setNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    const std::uint64_t id = nextConnId_++;
    conns_.emplace(id, std::move(conn));
    if (callbacks_.onAccepted) callbacks_.onAccepted(id);
  }
}

void EventLoop::handleReadable(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  char buf[65536];
  bool injected = false;
  for (;;) {
    // One injected fault per wakeup.  A partial read clamps the recv
    // buffer -- the remaining bytes stay queued in the kernel, exactly
    // like a real short read, and a later iteration picks them up.
    std::size_t want = sizeof(buf);
    bool simulatedError = false;
    if (!injected) {
      if (const fp::Hit hit = fp::check(fp::name::kServerRead)) {
        injected = true;
        if (hit.mode == fp::Mode::kError) {
          errno = hit.arg != 0 ? static_cast<int>(hit.arg) : EINTR;
          simulatedError = true;
        } else if (hit.mode == fp::Mode::kPartial && hit.arg < want) {
          want = static_cast<std::size_t>(hit.arg);
        }
      }
    }
    const ssize_t n =
        simulatedError ? -1 : ::recv(it->second.fd, buf, want, 0);
    if (n > 0) {
      if (!it->second.closing)
        it->second.in.append(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      it = conns_.find(id);
      if (it == conns_.end()) return;
      continue;
    }
    if (n == 0) {  // peer closed
      removeConn(id, true);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    removeConn(id, true);  // hard socket error
    return;
  }
  parseFrames(id);
}

void EventLoop::parseFrames(std::uint64_t id) {
  for (;;) {
    const auto it = conns_.find(id);
    if (it == conns_.end() || it->second.closing) return;
    std::optional<FrameHeader> header;
    try {
      header = peekFrameHeader(it->second.in);
    } catch (const ProtocolError& e) {
      // Stream sync is unrecoverable; the handler decides how to close.
      if (callbacks_.onProtocolError) callbacks_.onProtocolError(id, e.what());
      return;
    }
    if (!header) return;
    const std::size_t total = frameSize(*header);
    if (it->second.in.size() < total) return;
    std::string frame = it->second.in.substr(0, total);
    it->second.in.erase(0, total);
    if (callbacks_.onFrame) callbacks_.onFrame(id, std::move(frame));
  }
}

void EventLoop::handleWritable(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  bool injected = false;
  while (!conn.out.empty()) {
    // One injected fault per wakeup; a partial send clamps the length,
    // exercising the partial-write continuation (rest stays buffered).
    std::size_t len = conn.out.size();
    bool simulatedError = false;
    if (!injected) {
      if (const fp::Hit hit = fp::check(fp::name::kServerWrite)) {
        injected = true;
        if (hit.mode == fp::Mode::kError) {
          errno = hit.arg != 0 ? static_cast<int>(hit.arg) : EINTR;
          simulatedError = true;
        } else if (hit.mode == fp::Mode::kPartial && hit.arg < len) {
          len = static_cast<std::size_t>(hit.arg);
        }
      }
    }
    const ssize_t n =
        simulatedError ? -1
                       : ::send(conn.fd, conn.out.data(), len, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    removeConn(id, true);  // peer gone mid-write
    return;
  }
  if (conn.closing) removeConn(id, true);
}

void EventLoop::drainPosted() {
  char buf[256];
  while (::read(wakeRead_, buf, sizeof(buf)) > 0) {
  }
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard<std::mutex> lock(postedMutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::run() {
  auto nextTick = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         tickIntervalSeconds_));
  std::optional<Clock::time_point> flushDeadline;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> ids;  // ids[i] corresponds to fds[i + fixed]
  for (;;) {
    if (stopping_) {
      if (!flushDeadline)
        flushDeadline = Clock::now() + std::chrono::seconds(5);
      // Flush what we can; drop connections that are already drained.
      for (auto it = conns_.begin(); it != conns_.end();) {
        const std::uint64_t id = it->first;
        ++it;
        const auto cit = conns_.find(id);
        if (cit != conns_.end() &&
            (cit->second.out.empty() || Clock::now() > *flushDeadline))
          removeConn(id, false);
      }
      if (conns_.empty()) break;
    }

    fds.clear();
    ids.clear();
    fds.push_back({wakeRead_, POLLIN, 0});
    const bool pollListen = listenFd_ >= 0 && !stopping_;
    if (pollListen) fds.push_back({listenFd_, POLLIN, 0});
    for (const auto& [id, conn] : conns_) {
      short events = stopping_ ? 0 : POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      ids.push_back(id);
    }

    const auto now = Clock::now();
    int timeoutMs = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(nextTick - now)
            .count());
    if (timeoutMs < 0) timeoutMs = 0;
    if (timeoutMs > 1000) timeoutMs = 1000;

    int ready;
    if (const fp::Hit hit = fp::check(fp::name::kServerPoll);
        hit.mode == fp::Mode::kError) {
      // Simulate poll() failing (default EINTR, the benign signal case;
      // any other errno exercises the unrecoverable-failure exit).
      errno = hit.arg != 0 ? static_cast<int>(hit.arg) : EINTR;
      ready = -1;
    } else {
      ready = ::poll(fds.data(), fds.size(), timeoutMs);
    }
    if (ready < 0 && errno != EINTR) break;  // unrecoverable poll failure

    if (ready > 0) {
      std::size_t idx = 0;
      if (fds[idx++].revents & POLLIN) drainPosted();
      if (pollListen && (fds[idx].revents & POLLIN)) acceptPending();
      if (pollListen) ++idx;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const short revents = fds[idx + i].revents;
        if (revents == 0) continue;
        const std::uint64_t id = ids[i];
        if (revents & POLLOUT) handleWritable(id);
        if (conns_.find(id) == conns_.end()) continue;
        if (revents & (POLLIN | POLLHUP | POLLERR)) handleReadable(id);
      }
    } else {
      // poll woke for the timer (or EINTR); still drain any posts that
      // raced in, so a post never waits a full tick.
      drainPosted();
    }

    if (Clock::now() >= nextTick) {
      if (callbacks_.onTick && !stopping_) callbacks_.onTick();
      nextTick = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(
                                        tickIntervalSeconds_));
    }
  }
  // Exit leaves no connections behind.
  while (!conns_.empty()) removeConn(conns_.begin()->first, false);
}

}  // namespace eblocks::server
