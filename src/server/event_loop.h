// A poll()-readiness event loop for eblocksd: one thread owns every
// socket, every connection buffer, and all server state; synthesis
// executors communicate with it exclusively through post() -- the
// communicating-sequential-processes discipline (explicit queues between
// long-lived processes) that keeps the server logic single-threaded and
// lock-free even though the work it dispatches is heavily parallel.
//
// Responsibilities:
//   - non-blocking accept on one listening TCP socket;
//   - per-connection read buffers reassembled into complete wire frames
//     (protocol.h's peekFrameHeader validates the header -- including
//     the payload-length cap -- before the payload is buffered);
//   - per-connection write buffers with partial-write continuation
//     (POLLOUT is only requested while bytes are pending);
//   - a wake pipe so any thread can post() a closure into the loop;
//   - a periodic tick for progress streaming;
//   - graceful shutdown: requestStop() lets pending writes flush (with
//     a hard deadline) before the loop exits.
//
// The loop knows frames, not messages: what a frame *means* is the
// server's business (server.cpp), wired in through Callbacks.
#ifndef EBLOCKS_SERVER_EVENT_LOOP_H_
#define EBLOCKS_SERVER_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace eblocks::server {

class EventLoop {
 public:
  struct Callbacks {
    /// A complete, length-delimited frame arrived on `conn`.  Header
    /// pre-validated; payload/checksum not yet.
    std::function<void(std::uint64_t conn, std::string frame)> onFrame;
    /// The connection's byte stream can never resync (bad magic,
    /// oversized length, ...).  The handler typically sends a final
    /// error frame and calls closeAfterFlush().
    std::function<void(std::uint64_t conn, const std::string& reason)>
        onProtocolError;
    /// A new connection was accepted.
    std::function<void(std::uint64_t conn)> onAccepted;
    /// A connection was removed, for any reason (peer EOF, socket
    /// error, server-initiated close).  Fires exactly once per
    /// connection.
    std::function<void(std::uint64_t conn)> onClosed;
    /// Periodic timer (tickIntervalSeconds).
    std::function<void()> onTick;
  };

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Binds and listens; call before run().  Port 0 picks a free port
  /// (see port()).  Returns false with a message on failure.
  bool listenOn(const std::string& host, int port, std::string* error);

  /// The bound port (valid after listenOn succeeded).
  int port() const { return port_; }

  void setCallbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }
  void setTickInterval(double seconds) { tickIntervalSeconds_ = seconds; }

  /// Runs until requestStop() (posted from any thread) and all write
  /// buffers have flushed (or the flush deadline lapses).
  void run();

  /// Enqueues a closure for execution on the loop thread.  Thread-safe;
  /// the only cross-thread entry point.
  void post(std::function<void()> fn);

  /// Asks the loop to exit once pending writes are flushed.  Loop
  /// thread only (post() it from elsewhere).
  void requestStop();

  /// Stops accepting new connections (the listening socket closes);
  /// existing connections live on.  Loop thread only.
  void closeListener();

  // --- connection operations (loop thread only) -------------------------

  /// Queues bytes on a connection and flushes as much as the socket
  /// accepts now.  No-op on an unknown (already closed) connection.
  void send(std::uint64_t conn, std::string bytes);

  /// Closes once the write buffer drains; reads are ignored from now on.
  void closeAfterFlush(std::uint64_t conn);

  /// Closes immediately, discarding any unflushed bytes.
  void closeNow(std::uint64_t conn);

  std::size_t connectionCount() const { return conns_.size(); }

 private:
  struct Conn {
    int fd = -1;
    std::string in;
    std::string out;
    bool closing = false;  ///< close once `out` drains
  };

  void acceptPending();
  void handleReadable(std::uint64_t id);
  void handleWritable(std::uint64_t id);
  void parseFrames(std::uint64_t id);
  void removeConn(std::uint64_t id, bool notify);
  void drainPosted();

  Callbacks callbacks_;
  int listenFd_ = -1;
  int port_ = 0;
  int wakeRead_ = -1;
  int wakeWrite_ = -1;
  bool stopping_ = false;
  double tickIntervalSeconds_ = 0.25;
  std::uint64_t nextConnId_ = 1;
  std::map<std::uint64_t, Conn> conns_;

  std::mutex postedMutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace eblocks::server

#endif  // EBLOCKS_SERVER_EVENT_LOOP_H_
