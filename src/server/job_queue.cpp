#include "server/job_queue.h"

namespace eblocks::server {

bool JobQueue::tryPush(std::shared_ptr<Job> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || jobs_.size() >= capacity_) return false;
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

std::shared_ptr<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return nullptr;  // closed and drained
  std::shared_ptr<Job> job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

void JobQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t JobQueue::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

}  // namespace eblocks::server
