#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>

#include "cache/canonical_hash.h"
#include "io/binary.h"
#include "partition/engine.h"
#include "synth/synthesizer.h"

namespace eblocks::server {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t mixIn(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Content key for the idempotent-replay table: a hash of the *exact
/// request bytes* modulo the client-chosen id -- the network frame
/// verbatim, plus every option knob (including the ones the PR 8
/// optionsFingerprint deliberately normalizes away as pure
/// accelerators: time limit, threads, pruning, useCache).  Replay
/// identity must mean "the same request", nothing looser: the PR 8
/// structureHash is name-invariant by design (isomorphic designs like
/// the Table-1 Ignition Illuminator / Night Lamp Controller pair
/// collide on it), and an answer for one must never be replayed for
/// the other -- their synthesized networks carry different block
/// names.  A retrying client resends the identical frame bytes, so
/// exact-bytes keying still serves the lost-reply scenario it exists
/// for.
std::string idempotencyKey(const SynthRequest& request) {
  std::uint64_t fp = fnv1a64(request.algorithm);
  fp = mixIn(fp, static_cast<std::uint64_t>(request.inputs));
  fp = mixIn(fp, static_cast<std::uint64_t>(request.outputs));
  std::uint64_t limitBits = 0;
  static_assert(sizeof(limitBits) == sizeof(request.timeLimitSeconds));
  std::memcpy(&limitBits, &request.timeLimitSeconds, sizeof(limitBits));
  fp = mixIn(fp, limitBits);
  fp = mixIn(fp, static_cast<std::uint64_t>(request.threads));
  fp = mixIn(fp, request.prune ? 1u : 0u);
  fp = mixIn(fp, request.useCache ? 3u : 2u);
  const cache::Hash128 key{fnv1a64(request.networkFrame), fp};
  return cache::toHex(key);
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { stop(/*cancelInFlight=*/true); }

bool Server::start(std::string* error) {
  if (running_.load()) return true;
  if (!loop_.listenOn(options_.host, options_.port, error)) return false;
  queue_ = std::make_unique<JobQueue>(std::max<std::size_t>(
      1, options_.queueCapacity));
  if (options_.store) {
    store_ = options_.store;
  } else if (options_.cacheEnabled || !options_.cacheDir.empty()) {
    cache::StoreOptions store;
    store.directory = options_.cacheDir;
    store_ = std::make_shared<cache::SolutionStore>(store);
  }
  EventLoop::Callbacks cb;
  cb.onFrame = [this](std::uint64_t conn, std::string frame) {
    onFrame(conn, std::move(frame));
  };
  cb.onProtocolError = [this](std::uint64_t conn, const std::string& reason) {
    onProtocolError(conn, reason);
  };
  cb.onAccepted = [this](std::uint64_t) {
    const std::lock_guard<std::mutex> lock(statsMu_);
    ++stats_.connectionsNow;
  };
  cb.onClosed = [this](std::uint64_t conn) { onClosed(conn); };
  cb.onTick = [this] { onTick(); };
  loop_.setCallbacks(std::move(cb));
  loop_.setTickInterval(options_.progressIntervalSeconds);
  running_.store(true);
  loopThread_ = std::thread([this] { loop_.run(); });
  const int executors = std::max(1, options_.executors);
  executors_.reserve(static_cast<std::size_t>(executors));
  for (int i = 0; i < executors; ++i)
    executors_.emplace_back([this] { executorMain(); });
  return true;
}

void Server::stop(bool cancelInFlight) {
  if (!running_.exchange(false)) return;
  loop_.post([this, cancelInFlight] {
    draining_ = true;
    loop_.closeListener();
    if (cancelInFlight)
      for (auto& [key, job] : jobs_)
        job->cancel.store(true, std::memory_order_relaxed);
    maybeFinishDrain();
  });
  loopThread_.join();
  queue_->close();
  for (std::thread& t : executors_) t.join();
  executors_.clear();
}

void Server::cancelAll() {
  loop_.post([this] {
    for (auto& [key, job] : jobs_)
      job->cancel.store(true, std::memory_order_relaxed);
  });
}

ServerStats Server::stats() const {
  ServerStats out;
  {
    const std::lock_guard<std::mutex> lock(statsMu_);
    out = stats_;
  }
  if (queue_) out.queuedNow = queue_->size();
  return out;
}

// --- loop-thread handlers -------------------------------------------------

void Server::sendError(std::uint64_t conn, std::uint64_t id, ErrorCode code,
                       std::string message, std::uint64_t retryAfterMs) {
  ErrorReply reply;
  reply.id = id;
  reply.code = code;
  reply.retryAfterMs = retryAfterMs;
  reply.message = std::move(message);
  loop_.send(conn, encodeError(reply));
}

void Server::onProtocolError(std::uint64_t conn, const std::string& reason) {
  {
    const std::lock_guard<std::mutex> lock(statsMu_);
    ++stats_.protocolErrors;
  }
  sendError(conn, 0, ErrorCode::kBadFrame, reason);
  loop_.closeAfterFlush(conn);
}

void Server::onFrame(std::uint64_t conn, std::string frame) {
  // The loop validated the 16-byte header before assembling the frame,
  // so this peek cannot throw; routing just needs the tag.
  const FrameHeader header = *peekFrameHeader(frame);
  switch (header.tag) {
    case io::SectionTag::kServerRequest:
      handleRequest(conn, frame);
      return;
    case io::SectionTag::kServerCancel:
      handleCancel(conn, frame);
      return;
    default:
      // Server-to-client tags (or disk-format tags) arriving at the
      // server are a protocol violation, not a decodable message.
      onProtocolError(conn, std::string("unexpected frame tag ") +
                                std::to_string(static_cast<int>(header.tag)) +
                                " sent to server");
      return;
  }
}

void Server::handleRequest(std::uint64_t conn, std::string_view frame) {
  SynthRequest request;
  try {
    request = decodeRequest(frame);
  } catch (const io::BinaryError& e) {
    onProtocolError(conn, e.what());
    return;
  }
  const auto badRequest = [&](std::string why) {
    {
      const std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.badRequests;
    }
    sendError(conn, request.id, ErrorCode::kBadRequest, std::move(why));
  };
  if (draining_) {
    const std::lock_guard<std::mutex> lock(statsMu_);
    ++stats_.rejectedShutdown;
    sendError(conn, request.id, ErrorCode::kShuttingDown,
              "server is draining");
    return;
  }
  if (byConnReq_.count({conn, request.id})) {
    {
      const std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.badRequests;
    }
    sendError(conn, request.id, ErrorCode::kDuplicateRequest,
              "request id " + std::to_string(request.id) +
                  " is already in flight on this connection");
    return;
  }
  if (!partition::PartitionerRegistry::instance().find(request.algorithm)) {
    badRequest("unknown partitioning algorithm '" + request.algorithm + "'");
    return;
  }
  if (request.inputs < 1 || request.outputs < 1) {
    badRequest("programmable-block port budget must be at least 1x1");
    return;
  }
  if (request.threads < 0 || request.timeLimitSeconds < 0.0) {
    badRequest("threads and time limit must be non-negative");
    return;
  }
  auto job = std::make_shared<Job>();
  try {
    job->network = io::readNetworkBinary(request.networkFrame);
  } catch (const io::BinaryError& e) {
    badRequest(std::string("bad network payload: ") + e.what());
    return;
  }
  if (options_.idempotencyBytes > 0) {
    job->idemKey = idempotencyKey(request);
    if (const SynthResponse* done = findRemembered(job->idemKey)) {
      // A retry of a request this server already completed (typically
      // because the first reply was lost to a dropped connection):
      // replay the stored response under the incoming id.  Byte-for-byte
      // identical payload to the original -- no recomputation, which
      // also keeps anytime results (`ladder`) stable across retries.
      SynthResponse replay = *done;
      replay.id = request.id;
      {
        const std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.completed;
        ++stats_.idempotentReplays;
      }
      loop_.send(conn, encodeResponse(replay));
      return;
    }
  }
  job->key = nextJobKey_++;
  job->conn = conn;
  job->request = std::move(request);
  job->acceptedAt = Clock::now();
  if (!queue_->tryPush(job)) {
    const auto retryMs = static_cast<std::uint64_t>(
        std::max(0.0, options_.retryAfterSeconds) * 1000.0);
    {
      const std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.rejectedOverload;
    }
    sendError(conn, job->request.id, ErrorCode::kOverloaded,
              "job queue is full; retry later", retryMs);
    return;
  }
  jobs_.emplace(job->key, job);
  byConnReq_.emplace(std::make_pair(conn, job->request.id), job->key);
  const std::lock_guard<std::mutex> lock(statsMu_);
  ++stats_.accepted;
}

void Server::handleCancel(std::uint64_t conn, std::string_view frame) {
  CancelRequest cancel;
  try {
    cancel = decodeCancel(frame);
  } catch (const io::BinaryError& e) {
    onProtocolError(conn, e.what());
    return;
  }
  const auto it = byConnReq_.find({conn, cancel.id});
  if (it == byConnReq_.end()) {
    {
      const std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.badRequests;
    }
    sendError(conn, cancel.id, ErrorCode::kUnknownRequest,
              "no in-flight request with id " + std::to_string(cancel.id));
    return;
  }
  const std::shared_ptr<Job> job = jobs_.at(it->second);
  job->cancel.store(true, std::memory_order_relaxed);
  // A still-queued job can be answered right here; the executor that
  // eventually pops it sees `finished` and skips.  A running job replies
  // through its executor once the search unwinds.
  if (job->phase.load(std::memory_order_relaxed) == 0 &&
      !job->finished.exchange(true)) {
    byConnReq_.erase(it);
    jobs_.erase(job->key);
    {
      const std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.cancelled;
    }
    sendError(conn, cancel.id, ErrorCode::kCancelled,
              "request cancelled before it started");
    maybeFinishDrain();
  }
}

void Server::onClosed(std::uint64_t conn) {
  {
    const std::lock_guard<std::mutex> lock(statsMu_);
    if (stats_.connectionsNow > 0) --stats_.connectionsNow;
  }
  // Orphan (and cancel) every job the connection still owns: the search
  // stops at its next periodic check and the result is discarded.
  for (auto it = byConnReq_.begin(); it != byConnReq_.end();) {
    if (it->first.first != conn) {
      ++it;
      continue;
    }
    const auto jobIt = jobs_.find(it->second);
    if (jobIt != jobs_.end()) {
      jobIt->second->orphaned = true;
      jobIt->second->cancel.store(true, std::memory_order_relaxed);
    }
    it = byConnReq_.erase(it);
  }
}

void Server::onTick() {
  for (const auto& [key, job] : jobs_) {
    if (job->orphaned) continue;
    Progress tick;
    tick.id = job->request.id;
    const bool queued = job->phase.load(std::memory_order_relaxed) == 0;
    tick.state = queued ? Progress::State::kQueued : Progress::State::kRunning;
    if (queued) {
      std::uint64_t ahead = 0;
      for (const auto& [otherKey, other] : jobs_) {
        if (otherKey >= key) break;
        if (other->phase.load(std::memory_order_relaxed) == 0) ++ahead;
      }
      tick.queuePosition = ahead;
    }
    tick.exploredNodes = job->progressNodes.load(std::memory_order_relaxed);
    tick.elapsedSeconds = secondsSince(job->acceptedAt);
    loop_.send(job->conn, encodeProgress(tick));
  }
}

void Server::finishJob(const std::shared_ptr<Job>& job, std::string reply,
                       bool asCancelled, bool asFailure,
                       std::shared_ptr<SynthResponse> response) {
  byConnReq_.erase({job->conn, job->request.id});
  jobs_.erase(job->key);
  {
    const std::lock_guard<std::mutex> lock(statsMu_);
    if (stats_.runningNow > 0) --stats_.runningNow;
    if (job->orphaned || asCancelled)
      ++stats_.cancelled;
    else if (asFailure)
      ++stats_.synthFailed;
    else
      ++stats_.completed;
  }
  // Remember every completed response -- orphaned ones included: the
  // client whose connection died mid-job is exactly the one that will
  // retry, and the table is what turns that retry into a replay.
  if (response) rememberResponse(job->idemKey, *response);
  if (!job->orphaned) loop_.send(job->conn, std::move(reply));
  maybeFinishDrain();
}

const SynthResponse* Server::findRemembered(const std::string& key) {
  if (key.empty()) return nullptr;
  const auto it = remembered_.find(key);
  if (it == remembered_.end()) return nullptr;
  it->second.lastUse = ++rememberedClock_;
  return &it->second.response;
}

void Server::rememberResponse(const std::string& key,
                              const SynthResponse& response) {
  if (key.empty() || options_.idempotencyBytes == 0) return;
  const std::uint64_t bytes = sizeof(RememberedResponse) +
                              response.networkFrame.size() +
                              response.runFrame.size() +
                              response.degradedTier.size();
  if (bytes > options_.idempotencyBytes) return;  // would evict everything
  const auto existing = remembered_.find(key);
  if (existing != remembered_.end()) {
    rememberedBytes_ -= existing->second.bytes;
    remembered_.erase(existing);
  }
  while (!remembered_.empty() &&
         rememberedBytes_ + bytes > options_.idempotencyBytes) {
    auto lru = remembered_.begin();
    for (auto it = remembered_.begin(); it != remembered_.end(); ++it)
      if (it->second.lastUse < lru->second.lastUse) lru = it;
    rememberedBytes_ -= lru->second.bytes;
    remembered_.erase(lru);
  }
  RememberedResponse entry;
  entry.response = response;
  entry.bytes = bytes;
  entry.lastUse = ++rememberedClock_;
  rememberedBytes_ += bytes;
  remembered_.emplace(key, std::move(entry));
}

void Server::maybeFinishDrain() {
  if (draining_ && jobs_.empty()) loop_.requestStop();
}

// --- executor threads -----------------------------------------------------

void Server::executorMain() {
  while (std::shared_ptr<Job> job = queue_->pop()) {
    if (job->finished.load(std::memory_order_relaxed)) continue;  // ghost
    job->phase.store(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.runningNow;
    }
    std::string reply;
    std::shared_ptr<SynthResponse> completed;
    bool asCancelled = false;
    bool asFailure = false;
    if (job->cancel.load(std::memory_order_relaxed)) {
      asCancelled = true;
    } else {
      try {
        synth::SynthOptions so;
        so.algorithm = job->request.algorithm;
        so.spec.inputs = job->request.inputs;
        so.spec.outputs = job->request.outputs;
        so.engine.threads = job->request.threads;
        so.engine.timeLimitSeconds = job->request.timeLimitSeconds;
        so.engine.pruningBound = job->request.prune;
        so.engine.cancel = &job->cancel;
        so.engine.progressNodes = &job->progressNodes;
        // C sources are regenerable client-side and bulky on the wire;
        // the response carries the network + run frames instead.
        so.emitC = false;
        if (job->request.useCache) so.cache = store_;
        const synth::SynthResult result =
            synth::synthesize(job->network, so);
        if (job->cancel.load(std::memory_order_relaxed)) {
          asCancelled = true;  // best-so-far result discarded by contract
        } else {
          SynthResponse response;
          response.id = job->request.id;
          response.cacheOutcome =
              static_cast<std::uint8_t>(result.cacheOutcome);
          response.originalInner = result.originalInner;
          response.innerAfter = result.innerAfter;
          response.programmableBlocks = result.programmableBlocks;
          response.seconds = result.run.seconds;
          response.degradedTier = result.run.degradedTier;
          response.networkFrame = io::writeNetworkBinary(result.network);
          response.runFrame = io::writePartitionRunBinary(result.run);
          reply = encodeResponse(response);
          completed = std::make_shared<SynthResponse>(std::move(response));
        }
      } catch (const std::exception& e) {
        if (job->cancel.load(std::memory_order_relaxed)) {
          asCancelled = true;
        } else {
          asFailure = true;
          ErrorReply error;
          error.id = job->request.id;
          error.code = ErrorCode::kSynthFailed;
          error.message = e.what();
          reply = encodeError(error);
        }
      }
    }
    if (asCancelled) {
      ErrorReply error;
      error.id = job->request.id;
      error.code = ErrorCode::kCancelled;
      error.message = "request cancelled";
      reply = encodeError(error);
    }
    if (job->finished.exchange(true)) {
      // The loop won the race and already replied (queued-cancel path);
      // drop the result but keep the running gauge honest.
      const std::lock_guard<std::mutex> lock(statsMu_);
      if (stats_.runningNow > 0) --stats_.runningNow;
      continue;
    }
    loop_.post([this, job, reply = std::move(reply), asCancelled, asFailure,
                completed = std::move(completed)]() mutable {
      finishJob(job, std::move(reply), asCancelled, asFailure,
                std::move(completed));
    });
  }
}

}  // namespace eblocks::server
