#include "server/protocol.h"

#include <cstring>

namespace eblocks::server {

namespace {

using io::BinaryReader;
using io::BinaryWriter;
using io::SectionTag;

/// Every payload decode must consume exactly the payload: trailing bytes
/// mean a schema mismatch the version window failed to catch, and that
/// must be an error, not silence.
void requireEnd(const BinaryReader& r, const char* what) {
  if (!r.atEnd())
    throw ProtocolError(std::string("protocol: trailing bytes after ") +
                        what + " payload");
}

int checkedInt(std::uint64_t v, const char* what) {
  // Port budgets and thread counts are small; an absurd value is a
  // malformed request even though the varint itself decoded.
  if (v > 1u << 20)
    throw ProtocolError(std::string("protocol: ") + what +
                        " value out of range");
  return static_cast<int>(v);
}

}  // namespace

const char* toString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad-frame";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kSynthFailed: return "synth-failed";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kUnknownRequest: return "unknown-request";
    case ErrorCode::kDuplicateRequest: return "duplicate-request";
  }
  return "?";
}

std::optional<FrameHeader> peekFrameHeader(std::string_view buffer) {
  if (buffer.size() < 16) return std::nullopt;
  std::uint32_t magic = 0;
  std::memcpy(&magic, buffer.data(), 4);
  if (magic != io::kBinaryMagic)
    throw ProtocolError("protocol: bad magic (not an EBLK frame)");
  FrameHeader h;
  h.version =
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(buffer[4])) |
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(buffer[5]) << 8);
  if (h.version < io::kBinaryMinVersion || h.version > io::kBinaryVersion)
    throw ProtocolError("protocol: unsupported format version " +
                        std::to_string(h.version));
  h.tag = static_cast<SectionTag>(static_cast<std::uint8_t>(buffer[6]));
  if (buffer[7] != 0)
    throw ProtocolError("protocol: reserved header byte is not zero");
  std::uint64_t length = 0;
  for (int i = 0; i < 8; ++i)
    length |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(buffer[8 + static_cast<
                      std::size_t>(i)]))
              << (8 * i);
  if (length > kMaxWirePayload)
    throw ProtocolError("protocol: declared payload of " +
                        std::to_string(length) + " bytes exceeds the " +
                        std::to_string(kMaxWirePayload) + "-byte cap");
  h.payloadLength = length;
  return h;
}

std::size_t frameSize(const FrameHeader& header) {
  return 16 + static_cast<std::size_t>(header.payloadLength) + 8;
}

// --- request -------------------------------------------------------------

std::string encodeRequest(const SynthRequest& request) {
  BinaryWriter w;
  w.varint(request.id);
  w.str(request.algorithm);
  w.varint(static_cast<std::uint64_t>(request.inputs));
  w.varint(static_cast<std::uint64_t>(request.outputs));
  w.varint(static_cast<std::uint64_t>(request.threads));
  w.f64(request.timeLimitSeconds);
  w.u8(static_cast<std::uint8_t>((request.prune ? 1 : 0) |
                                 (request.useCache ? 2 : 0)));
  w.str(request.networkFrame);
  return w.finish(SectionTag::kServerRequest);
}

SynthRequest decodeRequest(std::string_view frame) {
  BinaryReader r(frame, SectionTag::kServerRequest);
  SynthRequest q;
  q.id = r.varint();
  q.algorithm = r.str();
  q.inputs = checkedInt(r.varint(), "inputs");
  q.outputs = checkedInt(r.varint(), "outputs");
  q.threads = checkedInt(r.varint(), "threads");
  q.timeLimitSeconds = r.f64();
  const std::uint8_t flags = r.u8();
  if (flags & ~0x3u)
    throw ProtocolError("protocol: unknown request flag bits set");
  q.prune = flags & 1;
  q.useCache = flags & 2;
  q.networkFrame = std::string(r.str());
  requireEnd(r, "request");
  return q;
}

// --- response ------------------------------------------------------------

std::string encodeResponse(const SynthResponse& response) {
  BinaryWriter w;
  w.varint(response.id);
  w.u8(response.cacheOutcome);
  w.varint(static_cast<std::uint64_t>(response.originalInner));
  w.varint(static_cast<std::uint64_t>(response.innerAfter));
  w.varint(static_cast<std::uint64_t>(response.programmableBlocks));
  w.f64(response.seconds);
  w.str(response.degradedTier);
  w.str(response.networkFrame);
  w.str(response.runFrame);
  return w.finish(SectionTag::kServerResponse);
}

SynthResponse decodeResponse(std::string_view frame) {
  BinaryReader r(frame, SectionTag::kServerResponse);
  SynthResponse p;
  p.id = r.varint();
  p.cacheOutcome = r.u8();
  p.originalInner = checkedInt(r.varint(), "originalInner");
  p.innerAfter = checkedInt(r.varint(), "innerAfter");
  p.programmableBlocks = checkedInt(r.varint(), "programmableBlocks");
  p.seconds = r.f64();
  p.degradedTier = std::string(r.str());
  p.networkFrame = std::string(r.str());
  p.runFrame = std::string(r.str());
  requireEnd(r, "response");
  return p;
}

// --- progress ------------------------------------------------------------

std::string encodeProgress(const Progress& progress) {
  BinaryWriter w;
  w.varint(progress.id);
  w.u8(static_cast<std::uint8_t>(progress.state));
  w.varint(progress.queuePosition);
  w.varint(progress.exploredNodes);
  w.f64(progress.elapsedSeconds);
  return w.finish(SectionTag::kServerProgress);
}

Progress decodeProgress(std::string_view frame) {
  BinaryReader r(frame, SectionTag::kServerProgress);
  Progress p;
  p.id = r.varint();
  const std::uint8_t state = r.u8();
  if (state > 1) throw ProtocolError("protocol: unknown progress state");
  p.state = static_cast<Progress::State>(state);
  p.queuePosition = r.varint();
  p.exploredNodes = r.varint();
  p.elapsedSeconds = r.f64();
  requireEnd(r, "progress");
  return p;
}

// --- error ---------------------------------------------------------------

std::string encodeError(const ErrorReply& error) {
  BinaryWriter w;
  w.varint(error.id);
  w.varint(static_cast<std::uint64_t>(error.code));
  w.varint(error.retryAfterMs);
  w.str(error.message);
  return w.finish(SectionTag::kServerError);
}

ErrorReply decodeError(std::string_view frame) {
  BinaryReader r(frame, SectionTag::kServerError);
  ErrorReply e;
  e.id = r.varint();
  const std::uint64_t code = r.varint();
  if (code < 1 ||
      code > static_cast<std::uint64_t>(ErrorCode::kDuplicateRequest))
    throw ProtocolError("protocol: unknown error code " +
                        std::to_string(code));
  e.code = static_cast<ErrorCode>(code);
  e.retryAfterMs = r.varint();
  e.message = std::string(r.str());
  requireEnd(r, "error");
  return e;
}

// --- cancel --------------------------------------------------------------

std::string encodeCancel(const CancelRequest& cancel) {
  BinaryWriter w;
  w.varint(cancel.id);
  return w.finish(SectionTag::kServerCancel);
}

CancelRequest decodeCancel(std::string_view frame) {
  BinaryReader r(frame, SectionTag::kServerCancel);
  CancelRequest c;
  c.id = r.varint();
  requireEnd(r, "cancel");
  return c;
}

}  // namespace eblocks::server
