// A small blocking client for the eblocksd wire protocol -- the
// reference implementation of the client side of docs/server.md, used
// by the tests, by bench_load, and as the starting point for real
// integrations.  One Client is one connection; it is not thread-safe
// (use one per thread, the way bench_load's load generators do).
//
// Three levels:
//   - frame level: sendFrame() / nextFrame() move whole validated-length
//     frames, with the same 16-byte-header reassembly the server uses;
//   - call level: call() submits a request and blocks until its
//     response or error arrives, collecting any progress ticks that
//     stream in between;
//   - retry level: callWithRetry() wraps call() in bounded retries with
//     exponential backoff + deterministic jitter, honoring the server's
//     kOverloaded retryAfterMs hint and transparently reconnecting after
//     timeouts or connection loss.  Safe to retry because the server
//     deduplicates completed work through its idempotency table (keyed
//     on the canonical request content, not the connection), so a
//     resubmitted request whose first answer was lost in transit is
//     replayed byte-identically instead of recomputed.  See
//     docs/robustness.md for the exact retryability table.
#ifndef EBLOCKS_SERVER_CLIENT_H_
#define EBLOCKS_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace eblocks::server {

/// One decoded server-to-client frame.
struct ServerMessage {
  enum class Kind { kResponse, kProgress, kError };
  Kind kind = Kind::kError;
  SynthResponse response;  ///< valid when kind == kResponse
  Progress progress;       ///< valid when kind == kProgress
  ErrorReply error;        ///< valid when kind == kError
};

/// The outcome of one request: exactly one of `response` / `error` is
/// set (per the protocol's one-reply contract), plus any progress ticks
/// observed while waiting.  Neither set = timeout or connection loss.
struct CallResult {
  std::optional<SynthResponse> response;
  std::optional<ErrorReply> error;
  std::vector<Progress> progress;

  bool ok() const { return response.has_value(); }
};

/// Knobs for callWithRetry().  The defaults suit an interactive caller:
/// up to 5 attempts spanning roughly a second of backoff.
struct RetryPolicy {
  /// Total attempts, including the first (>= 1).
  int maxAttempts = 5;
  /// Backoff before attempt k+1 is initialBackoffMs * multiplier^k,
  /// capped at maxBackoffMs -- then raised to the server's retryAfterMs
  /// hint when one was given, and finally jittered.
  double initialBackoffMs = 25.0;
  double maxBackoffMs = 2000.0;
  double multiplier = 2.0;
  /// Uniform jitter: the sleep is scaled by a factor drawn from
  /// [1 - jitterFraction, 1 + jitterFraction].  Deterministic per seed,
  /// so tests replay exactly.
  double jitterFraction = 0.25;
  std::uint32_t rngSeed = 1;
  /// Per-attempt call() timeout in ms; 0 waits forever (then only
  /// errors and connection loss trigger retries).
  int attemptTimeoutMs = 0;
  /// Observer invoked before each backoff sleep (attempt just failed,
  /// 1-based; sleepMs after jitter; reason is human-readable).  For
  /// logging and tests; may be empty.
  std::function<void(int attempt, double sleepMs, const std::string& reason)>
      onRetry;
};

/// Is this outcome worth retrying?  True for kOverloaded and
/// kShuttingDown errors and for no-reply outcomes (timeout, connection
/// loss); false for every reply that would only repeat (bad request,
/// synthesis failure, cancellation, protocol errors).
bool retryable(const CallResult& result);

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connectTo(const std::string& host, int port,
                 std::string* error = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Writes a complete frame (blocking until fully sent).
  bool sendFrame(std::string_view frame, std::string* error = nullptr);

  /// Reads the next complete frame.  timeoutMs 0 waits forever.
  /// nullopt on timeout, EOF, or socket error (`error` says which).
  std::optional<std::string> nextFrame(int timeoutMs,
                                       std::string* error = nullptr);

  /// nextFrame + tag dispatch + payload decode.  Throws ProtocolError
  /// on a frame that decodes to no known server message.
  std::optional<ServerMessage> nextMessage(int timeoutMs,
                                           std::string* error = nullptr);

  /// Submits `request` and blocks until its reply (response or error)
  /// arrives or timeoutMs lapses.  Progress ticks for the request are
  /// collected; replies to *other* ids on this connection are ignored.
  CallResult call(const SynthRequest& request, int timeoutMs = 0);

  /// call() with bounded retries per `policy`.  Retries only outcomes
  /// retryable() approves; reconnects (to the last connectTo() address)
  /// when the connection was lost or a timeout left a stale in-flight
  /// request behind -- resubmitting on a fresh connection lets the
  /// server orphan the old attempt instead of reporting a duplicate.
  /// Returns the final attempt's result.
  CallResult callWithRetry(const SynthRequest& request,
                           const RetryPolicy& policy = {});

  /// Sends a cancel for an in-flight request id (fire and forget; the
  /// reply arrives through the normal message stream).
  bool cancelRequest(std::uint64_t id);

 private:
  int fd_ = -1;
  std::string inbox_;  ///< bytes received but not yet framed
  std::string host_;   ///< last connectTo() target, for reconnects
  int port_ = -1;
};

}  // namespace eblocks::server

#endif  // EBLOCKS_SERVER_CLIENT_H_
