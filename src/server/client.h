// A small blocking client for the eblocksd wire protocol -- the
// reference implementation of the client side of docs/server.md, used
// by the tests, by bench_load, and as the starting point for real
// integrations.  One Client is one connection; it is not thread-safe
// (use one per thread, the way bench_load's load generators do).
//
// Two levels:
//   - frame level: sendFrame() / nextFrame() move whole validated-length
//     frames, with the same 16-byte-header reassembly the server uses;
//   - call level: call() submits a request and blocks until its
//     response or error arrives, collecting any progress ticks that
//     stream in between.
#ifndef EBLOCKS_SERVER_CLIENT_H_
#define EBLOCKS_SERVER_CLIENT_H_

#include <optional>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace eblocks::server {

/// One decoded server-to-client frame.
struct ServerMessage {
  enum class Kind { kResponse, kProgress, kError };
  Kind kind = Kind::kError;
  SynthResponse response;  ///< valid when kind == kResponse
  Progress progress;       ///< valid when kind == kProgress
  ErrorReply error;        ///< valid when kind == kError
};

/// The outcome of one request: exactly one of `response` / `error` is
/// set (per the protocol's one-reply contract), plus any progress ticks
/// observed while waiting.  Neither set = timeout or connection loss.
struct CallResult {
  std::optional<SynthResponse> response;
  std::optional<ErrorReply> error;
  std::vector<Progress> progress;

  bool ok() const { return response.has_value(); }
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connectTo(const std::string& host, int port,
                 std::string* error = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Writes a complete frame (blocking until fully sent).
  bool sendFrame(std::string_view frame, std::string* error = nullptr);

  /// Reads the next complete frame.  timeoutMs 0 waits forever.
  /// nullopt on timeout, EOF, or socket error (`error` says which).
  std::optional<std::string> nextFrame(int timeoutMs,
                                       std::string* error = nullptr);

  /// nextFrame + tag dispatch + payload decode.  Throws ProtocolError
  /// on a frame that decodes to no known server message.
  std::optional<ServerMessage> nextMessage(int timeoutMs,
                                           std::string* error = nullptr);

  /// Submits `request` and blocks until its reply (response or error)
  /// arrives or timeoutMs lapses.  Progress ticks for the request are
  /// collected; replies to *other* ids on this connection are ignored.
  CallResult call(const SynthRequest& request, int timeoutMs = 0);

  /// Sends a cancel for an in-flight request id (fire and forget; the
  /// reply arrives through the normal message stream).
  bool cancelRequest(std::uint64_t id);

 private:
  int fd_ = -1;
  std::string inbox_;  ///< bytes received but not yet framed
};

}  // namespace eblocks::server

#endif  // EBLOCKS_SERVER_CLIENT_H_
