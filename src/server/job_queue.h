// The bounded job queue between eblocksd's event loop and its synthesis
// executors -- the backpressure point of the whole daemon.
//
// Admission is non-blocking by design: the event loop calls tryPush()
// and, when the queue is at capacity, immediately answers the client
// with kOverloaded + retryAfterMs instead of buffering unbounded work.
// That is the explicit backpressure contract (docs/server.md): once a
// request is *accepted* it is never dropped -- executors pop in FIFO
// order and every accepted job ends in exactly one response or error --
// but a full queue sheds load at the door, visibly, with a retry hint.
//
// Executors block in pop() (condition variable); close() wakes them all
// and makes pop() return nullptr once the queue is empty, which is the
// drain path: the server stops admitting, waits for in-flight jobs,
// then closes the queue so executor threads exit.
#ifndef EBLOCKS_SERVER_JOB_QUEUE_H_
#define EBLOCKS_SERVER_JOB_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "core/network.h"
#include "server/protocol.h"

namespace eblocks::server {

/// One accepted synthesis job, shared between the event loop (which owns
/// the request lifecycle) and the executor running it.  The atomics are
/// the only cross-thread state: `cancel` is the flag the search polls at
/// its timeout cadence (partition::EngineOptions::cancel), and
/// `progressNodes` is the counter the loop's tick reads for streamed
/// progress -- the job itself never needs a lock.
struct Job {
  std::uint64_t key = 0;   ///< server-global job key (never reused)
  std::uint64_t conn = 0;  ///< owning connection id
  SynthRequest request;
  Network network;  ///< decoded at admission, so executors never parse

  std::atomic<bool> cancel{false};
  std::atomic<std::uint64_t> progressNodes{0};
  /// Progress::State as an atomic byte (0 queued, 1 running).
  std::atomic<std::uint8_t> phase{0};
  /// Exactly-one-reply guard.  Whoever exchanges false -> true owns the
  /// reply: the loop replies kCancelled to a still-queued cancel at once
  /// (the executor later pops the job, sees `finished`, and skips it);
  /// otherwise the executor's completion wins.
  std::atomic<bool> finished{false};
  /// Owning connection closed before completion; loop thread only.  The
  /// result is discarded instead of sent (but a completed response still
  /// enters the idempotent-replay table so a retry can collect it).
  bool orphaned = false;
  /// Content key for the idempotent-replay table, computed at admission
  /// ("" when the table is disabled); loop thread + executor read-only.
  std::string idemKey;
  std::chrono::steady_clock::time_point acceptedAt{};
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admits a job unless the queue is full or closed.  Never blocks:
  /// `false` is the backpressure signal.
  bool tryPush(std::shared_ptr<Job> job);

  /// Blocks for the next job.  Returns nullptr once the queue is closed
  /// and drained -- the executor's exit condition.
  std::shared_ptr<Job> pop();

  /// Wakes all poppers; subsequent tryPush() fails, and pop() returns
  /// nullptr after the backlog empties.
  void close();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool closed_ = false;
};

}  // namespace eblocks::server

#endif  // EBLOCKS_SERVER_JOB_QUEUE_H_
