// eblocksd -- the eblocks synthesis daemon (docs/server.md).
//
// A thin operational wrapper around server::Server: parse flags, start,
// then wait for signals through a self-pipe (the only async-signal-safe
// thing the handler does is write one byte).  The first SIGINT/SIGTERM
// begins a graceful drain -- stop accepting, finish in-flight jobs,
// flush replies; a second signal escalates by cancelling the in-flight
// searches at their next periodic check.  The --help text is the
// drift-checked usage block in docs/server.md (doc-drift:server).
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/failpoint.h"
#include "server/server.h"

namespace {

int gSignalPipe[2] = {-1, -1};

extern "C" void handleSignal(int) {
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(gSignalPipe[1], &byte, 1);
}

constexpr const char* kUsage =
    R"(eblocksd - the eblocks synthesis daemon

Serves synthesize() over the binary wire protocol: clients send network
frames plus options, the daemon answers with the synthesized network and
partitioning record, streaming progress ticks in between.  See
docs/server.md for the protocol and the backpressure contract.

Usage: eblocksd [options]

Options:
  --addr HOST:PORT  listen address (default 127.0.0.1:4857; port 0 picks
                    a free port, printed on startup)
  --jobs N          synthesis executor threads (default 2)
  --queue N         bounded job-queue capacity; admissions beyond it are
                    rejected with overloaded + retry-after (default 16)
  --cache DIR       attach a persistent solution cache rooted at DIR
  --cache-mem       attach an in-memory solution cache
  --failpoints      list the registered fault-injection sites and exit
  --help            print this help and exit

Fault injection: set EBLOCKS_FAILPOINTS to a schedule (for example
"cache.fsync=error:enospc*once;server.read=partial:1*every-3") to arm
failure sites at startup -- docs/robustness.md has the grammar.

Signals: the first SIGINT/SIGTERM drains gracefully (stop accepting,
finish in-flight jobs, flush replies); a second signal cancels in-flight
searches at their next periodic check.
)";

bool parseAddr(const std::string& addr, std::string* host, int* port) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= addr.size())
    return false;
  *host = addr.substr(0, colon);
  char* end = nullptr;
  const long value = std::strtol(addr.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value < 0 || value > 65535)
    return false;
  *port = static_cast<int>(value);
  return true;
}

bool parseCount(const char* text, int* out) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == nullptr || *end != '\0' || value < 1 || value > 4096)
    return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  eblocks::server::ServerOptions options;
  options.port = 4857;
  int queueCapacity = 16;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "eblocksd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--failpoints") {
      // The drift-checked failpoint catalog (doc-drift:robustness).
      for (const auto& entry : eblocks::core::failpoint::catalog())
        std::printf("%-20.*s %.*s\n", static_cast<int>(entry.name.size()),
                    entry.name.data(),
                    static_cast<int>(entry.description.size()),
                    entry.description.data());
      return 0;
    } else if (arg == "--addr") {
      if (!parseAddr(value(), &options.host, &options.port)) {
        std::fprintf(stderr, "eblocksd: bad --addr (want HOST:PORT)\n");
        return 2;
      }
    } else if (arg == "--jobs") {
      if (!parseCount(value(), &options.executors)) {
        std::fprintf(stderr, "eblocksd: bad --jobs (want 1..4096)\n");
        return 2;
      }
    } else if (arg == "--queue") {
      if (!parseCount(value(), &queueCapacity)) {
        std::fprintf(stderr, "eblocksd: bad --queue (want 1..4096)\n");
        return 2;
      }
    } else if (arg == "--cache") {
      options.cacheDir = value();
      options.cacheEnabled = true;
    } else if (arg == "--cache-mem") {
      options.cacheEnabled = true;
    } else {
      std::fprintf(stderr, "eblocksd: unknown option '%s' (--help lists them)\n",
                   arg.c_str());
      return 2;
    }
  }
  options.queueCapacity = static_cast<std::size_t>(queueCapacity);

  std::string fpError;
  if (!eblocks::core::failpoint::installFromEnv(&fpError)) {
    std::fprintf(stderr, "eblocksd: bad EBLOCKS_FAILPOINTS: %s\n",
                 fpError.c_str());
    return 2;
  }

  if (::pipe(gSignalPipe) != 0) {
    std::perror("eblocksd: pipe");
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = handleSignal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  eblocks::server::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "eblocksd: %s\n", error.c_str());
    return 1;
  }
  std::printf("eblocksd listening on %s:%d (jobs=%d queue=%d cache=%s)\n",
              options.host.c_str(), server.port(), options.executors,
              queueCapacity,
              options.cacheEnabled
                  ? (options.cacheDir.empty() ? "mem" : options.cacheDir.c_str())
                  : "off");
  std::fflush(stdout);

  // Wait on the self-pipe: 's' bytes come from the signal handler, the
  // single 'd' byte from the drain thread when stop() returns.
  int signals = 0;
  std::thread stopper;
  for (;;) {
    char byte = 0;
    const ssize_t n = ::read(gSignalPipe[0], &byte, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0 || byte == 'd') break;
    ++signals;
    if (signals == 1) {
      std::fprintf(stderr,
                   "eblocksd: draining (signal again to cancel in-flight "
                   "jobs)\n");
      stopper = std::thread([&server] {
        server.stop(/*cancelInFlight=*/false);
        const char done = 'd';
        [[maybe_unused]] const ssize_t w = ::write(gSignalPipe[1], &done, 1);
      });
    } else {
      std::fprintf(stderr, "eblocksd: cancelling in-flight jobs\n");
      server.cancelAll();
    }
  }
  if (stopper.joinable()) stopper.join();

  const eblocks::server::ServerStats stats = server.stats();
  std::printf("eblocksd: served %llu requests (%llu rejected overloaded, "
              "%llu cancelled, %llu failed)\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.rejectedOverload),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.synthFailed));
  return 0;
}
