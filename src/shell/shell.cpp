#include "shell/shell.h"

#include <ostream>
#include <sstream>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "io/dot.h"
#include "io/netlist.h"
#include "partition/engine.h"
#include "server/server.h"

namespace eblocks::shell {

namespace {

constexpr char kHelp[] = R"(commands:
  new <name...>                  start a fresh design
  block <instance> <type>        place a catalog block
  connect <a>.<port> <b>.<port>  wire an output to an input
  design <table-1 name...>       load a library design
  netlist                        print the design as a netlist
  validate                       structural check
  sim                            (re)start the simulator
  set <sensor> <0|1>             drive a sensor and settle
  press <sensor>                 1-then-0 pulse
  tick [n]                       advance the timer
  outputs                        print output block values
  probe <block> <var>            read a block variable
  synth [algo] [ins outs] [thr] [opts...]
                                 run synthesis (default paredown 2 2;
                                 opts, any order: work-stealing |
                                 fixed-split; prune | no-prune;
                                 limit=<seconds> pocket=<blocks>
                                 rounds=<n>)
  algorithms                     list registered partitioning algorithms
  cache [on|off|dir=<path>]      solution cache for synth (on = in-memory,
                                 dir= = persistent on disk, off = detach;
                                 bare 'cache' prints status and stats)
  serve start|stop|status        synthesis daemon over the wire protocol
                                 (start opts, any order: addr=<host:port>
                                 jobs=<n> queue=<n>; shares this shell's
                                 cache; see docs/server.md)
  report                         print the last synthesis report
  use synth|source               choose the network 'sim' runs
  dot                            print the active network as DOT
  emitc <prog-instance>          print generated C for a prog block
  help                           this text
  quit                           leave the shell
)";

/// Strict numeric parse of a keyword value: the whole text must be the
/// number (so "limit=5x" is an error, not 5).
bool parseNumber(const std::string& text, double* value) {
  try {
    std::size_t pos = 0;
    *value = std::stod(text, &pos);
    return !text.empty() && pos == text.size();
  } catch (...) {
    return false;
  }
}

bool parseNumber(const std::string& text, int* value) {
  try {
    std::size_t pos = 0;
    *value = std::stoi(text, &pos);
    return !text.empty() && pos == text.size();
  } catch (...) {
    return false;
  }
}

std::string restOfLine(std::istream& in) {
  std::string rest;
  std::getline(in, rest);
  const std::size_t start = rest.find_first_not_of(" \t");
  if (start == std::string::npos) return "";
  const std::size_t end = rest.find_last_not_of(" \t\r");
  return rest.substr(start, end - start + 1);
}

bool parseEndpointRef(const std::string& token, std::string& block,
                      int& port) {
  const std::size_t dot = token.rfind('.');
  if (dot == std::string::npos || dot + 1 >= token.size()) return false;
  block = token.substr(0, dot);
  try {
    port = std::stoi(token.substr(dot + 1));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

Shell::Shell() : source_("design") {}

Shell::~Shell() {
  if (server_) server_->stop(/*cancelInFlight=*/true);
}

const Network& Shell::activeNetwork() const {
  return useSynth_ && synthResult_ ? synthResult_->network : source_;
}

bool Shell::ensureSimulator(std::ostream& out) {
  if (simulator_) return true;
  try {
    simulator_ = std::make_unique<sim::Simulator>(activeNetwork());
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    return false;
  }
  return true;
}

bool Shell::execute(const std::string& line, std::ostream& out) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return true;
  try {
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      out << kHelp;
    } else if (cmd == "new") {
      std::string name = restOfLine(in);
      source_ = Network(name.empty() ? "design" : name);
      synthResult_.reset();
      simulator_.reset();
      useSynth_ = false;
      out << "new design '" << source_.name() << "'\n";
    } else if (cmd == "block") {
      cmdBlock(in, out);
    } else if (cmd == "connect") {
      cmdConnect(in, out);
    } else if (cmd == "design") {
      cmdDesign(in, out);
    } else if (cmd == "netlist") {
      out << io::writeNetlist(source_);
    } else if (cmd == "validate") {
      const auto problems = activeNetwork().validate();
      if (problems.empty()) {
        out << "ok\n";
      } else {
        for (const auto& p : problems) out << "problem: " << p << "\n";
      }
    } else if (cmd == "sim") {
      cmdSim(out);
    } else if (cmd == "set") {
      cmdSet(in, out, false);
    } else if (cmd == "press") {
      cmdSet(in, out, true);
    } else if (cmd == "tick") {
      cmdTick(in, out);
    } else if (cmd == "outputs") {
      cmdOutputs(out);
    } else if (cmd == "probe") {
      cmdProbe(in, out);
    } else if (cmd == "synth") {
      cmdSynth(in, out);
    } else if (cmd == "cache") {
      cmdCache(in, out);
    } else if (cmd == "serve") {
      cmdServe(in, out);
    } else if (cmd == "algorithms") {
      const auto& registry = partition::PartitionerRegistry::instance();
      for (const std::string& name : registry.names())
        out << "  " << name << "  - " << registry.describe(name) << "\n";
    } else if (cmd == "report") {
      if (synthResult_) {
        out << synthResult_->report();
      } else {
        out << "error: no synthesis has run\n";
      }
    } else if (cmd == "use") {
      cmdUse(in, out);
    } else if (cmd == "dot") {
      out << io::toDot(activeNetwork());
    } else if (cmd == "emitc") {
      cmdEmitC(in, out);
    } else {
      out << "error: unknown command '" << cmd << "' (try 'help')\n";
    }
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
  }
  return true;
}

void Shell::run(std::istream& in, std::ostream& out, bool echo) {
  std::string line;
  while (std::getline(in, line)) {
    if (echo) out << "> " << line << "\n";
    if (!execute(line, out)) return;
  }
}

void Shell::cmdBlock(std::istream& args, std::ostream& out) {
  std::string instance, type;
  if (!(args >> instance >> type)) {
    out << "usage: block <instance> <type>\n";
    return;
  }
  source_.addBlock(instance, blocks::defaultCatalog().get(type));
  simulator_.reset();
  out << "placed " << instance << " (" << type << ")\n";
}

void Shell::cmdConnect(std::istream& args, std::ostream& out) {
  std::string a, b;
  if (!(args >> a >> b)) {
    out << "usage: connect <from>.<port> <to>.<port>\n";
    return;
  }
  std::string fromBlock, toBlock;
  int fromPort = 0, toPort = 0;
  if (!parseEndpointRef(a, fromBlock, fromPort) ||
      !parseEndpointRef(b, toBlock, toPort)) {
    out << "usage: connect <from>.<port> <to>.<port>\n";
    return;
  }
  const auto from = source_.findBlock(fromBlock);
  const auto to = source_.findBlock(toBlock);
  if (!from || !to) {
    out << "error: unknown block\n";
    return;
  }
  source_.connect(*from, fromPort, *to, toPort);
  simulator_.reset();
  out << "connected " << a << " -> " << b << "\n";
}

void Shell::cmdDesign(std::istream& args, std::ostream& out) {
  const std::string name = restOfLine(args);
  source_ = designs::byName(name);
  synthResult_.reset();
  simulator_.reset();
  useSynth_ = false;
  out << "loaded '" << source_.name() << "' (" << source_.blockCount()
      << " blocks, " << source_.innerBlocks().size() << " inner)\n";
}

void Shell::cmdSim(std::ostream& out) {
  simulator_.reset();
  if (ensureSimulator(out))
    out << "simulating '" << activeNetwork().name() << "'\n";
}

void Shell::cmdSet(std::istream& args, std::ostream& out, bool press) {
  std::string sensor;
  std::int64_t value = 0;
  if (!(args >> sensor) || (!press && !(args >> value))) {
    out << (press ? "usage: press <sensor>\n" : "usage: set <sensor> <0|1>\n");
    return;
  }
  if (!ensureSimulator(out)) return;
  if (press) {
    simulator_->apply(sensor, 1);
    simulator_->apply(sensor, 0);
  } else {
    simulator_->apply(sensor, value);
  }
  cmdOutputs(out);
}

void Shell::cmdTick(std::istream& args, std::ostream& out) {
  int n = 1;
  args >> n;
  if (!ensureSimulator(out)) return;
  for (int i = 0; i < n; ++i) simulator_->tick();
  cmdOutputs(out);
}

void Shell::cmdOutputs(std::ostream& out) {
  if (!ensureSimulator(out)) return;
  const Network& net = simulator_->network();
  bool any = false;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (net.isOutput(b)) {
      out << "  " << net.block(b).name << " = "
          << simulator_->outputValue(b) << "\n";
      any = true;
    }
  if (!any) out << "  (no output blocks)\n";
}

void Shell::cmdProbe(std::istream& args, std::ostream& out) {
  std::string block, var;
  if (!(args >> block >> var)) {
    out << "usage: probe <block> <var>\n";
    return;
  }
  if (!ensureSimulator(out)) return;
  const auto id = simulator_->network().findBlock(block);
  if (!id) {
    out << "error: unknown block '" << block << "'\n";
    return;
  }
  out << "  " << block << "." << var << " = " << simulator_->probe(*id, var)
      << "\n";
}

void Shell::cmdSynth(std::istream& args, std::ostream& out) {
  synth::SynthOptions options;
  std::string algorithm;
  if (args >> algorithm) {
    if (!partition::PartitionerRegistry::instance().find(algorithm)) {
      out << "error: unknown algorithm '" << algorithm
          << "' (try 'algorithms')\n";
      return;
    }
    options.algorithm = algorithm;
  }
  // Positional, each group optional: a group that fails on its first
  // token leaves it in place (clear() resets the failbit) so a trailing
  // scheduler name works with or without the numeric groups.  A ports
  // group missing its second number is an error, not a silent default.
  int ins = 0, outs = 0;
  if (args >> ins) {
    if (!(args >> outs)) {
      out << "usage: synth [algo] [ins outs] [threads] [scheduler] "
             "[prune|no-prune] [limit=<s>] [pocket=<k>] [rounds=<n>]\n";
      return;
    }
    options.spec.inputs = ins;
    options.spec.outputs = outs;
  } else {
    args.clear();
  }
  int threads = 0;
  if (args >> threads) {
    if (threads < 0) {
      out << "error: thread count must be >= 0 (0 = one per hardware "
             "thread)\n";
      return;
    }
    options.engine.threads = threads;
  } else {
    args.clear();
  }
  // Trailing keywords, in any order, at most one of each: a scheduler
  // name, a pruning flag, and the heuristic knobs (limit= applies to
  // every anytime strategy; pocket=/rounds= steer lns).  Anything else
  // is an error -- never a silent default.
  bool haveScheduler = false, havePruning = false;
  bool haveLimit = false, havePocket = false, haveRounds = false;
  std::string word;
  while (args >> word) {
    const auto scheduler = partition::parseScheduler(word);
    if (scheduler && !haveScheduler) {
      options.engine.scheduler = *scheduler;
      haveScheduler = true;
    } else if ((word == "prune" || word == "no-prune") && !havePruning) {
      options.engine.pruningBound = (word == "prune");
      havePruning = true;
    } else if (word.rfind("limit=", 0) == 0 && !haveLimit) {
      double seconds = 0.0;
      if (!parseNumber(word.substr(6), &seconds) || seconds < 0) {
        out << "error: limit= expects seconds >= 0 (0 = no limit)\n";
        return;
      }
      options.engine.timeLimitSeconds = seconds;
      haveLimit = true;
    } else if (word.rfind("pocket=", 0) == 0 && !havePocket) {
      int pocket = 0;
      if (!parseNumber(word.substr(7), &pocket) || pocket < 0) {
        out << "error: pocket= expects a block count >= 0 (0 = auto)\n";
        return;
      }
      options.engine.lnsPocket = pocket;
      havePocket = true;
    } else if (word.rfind("rounds=", 0) == 0 && !haveRounds) {
      int rounds = 0;
      if (!parseNumber(word.substr(7), &rounds) || rounds < 0) {
        out << "error: rounds= expects a round count >= 0 (0 = until the "
               "time limit)\n";
        return;
      }
      options.engine.lnsRounds = rounds;
      haveRounds = true;
    } else {
      out << "error: unknown synth option '" << word
          << "' (scheduler: work-stealing | fixed-split; pruning: prune | "
             "no-prune; heuristics: limit=<s> pocket=<k> rounds=<n>)\n";
      return;
    }
  }
  options.cache = cache_;
  synthResult_ = synth::synthesize(source_, options);
  simulator_.reset();
  out << synthResult_->report();
}

void Shell::cmdCache(std::istream& args, std::ostream& out) {
  std::string word;
  if (!(args >> word) || word == "status") {
    if (!cache_) {
      out << "cache: off\n";
      return;
    }
    const cache::StoreStats s = cache_->stats();
    out << "cache: on ("
        << (cache_->directory().empty() ? std::string("in-memory")
                                        : "dir=" + cache_->directory())
        << ", " << cache_->recordCount() << " records, "
        << cache_->totalBytes() << " bytes)\n";
    out << "  hits=" << s.hits << " misses=" << s.misses
        << " warm-starts=" << s.warmStarts << " inserts=" << s.inserts
        << " evictions=" << s.evictions << " corrupt=" << s.corrupt << "\n";
    return;
  }
  if (word == "on") {
    cache_ = std::make_shared<cache::SolutionStore>(cache::StoreOptions{});
    out << "cache: on (in-memory)\n";
  } else if (word == "off") {
    cache_.reset();
    out << "cache: off\n";
  } else if (word.rfind("dir=", 0) == 0 && word.size() > 4) {
    cache::StoreOptions options;
    options.directory = word.substr(4);
    cache_ = std::make_shared<cache::SolutionStore>(std::move(options));
    out << "cache: on (dir=" << cache_->directory() << ", "
        << cache_->recordCount() << " records)\n";
  } else {
    out << "usage: cache [on|off|dir=<path>|status]\n";
  }
}

void Shell::cmdServe(std::istream& args, std::ostream& out) {
  std::string sub;
  if (!(args >> sub)) sub = "status";
  if (sub == "status") {
    if (!server_) {
      out << "serve: not running\n";
      return;
    }
    const server::ServerStats s = server_->stats();
    out << "serve: listening on port " << server_->port() << " ("
        << s.connectionsNow << " connections, " << s.queuedNow << " queued, "
        << s.runningNow << " running)\n";
    out << "  accepted=" << s.accepted << " completed=" << s.completed
        << " overloaded=" << s.rejectedOverload
        << " cancelled=" << s.cancelled << " failed=" << s.synthFailed
        << " bad-requests=" << s.badRequests
        << " bad-frames=" << s.protocolErrors << "\n";
    return;
  }
  if (sub == "stop") {
    if (!server_) {
      out << "error: serve: not running\n";
      return;
    }
    server_->stop();
    const server::ServerStats s = server_->stats();
    server_.reset();
    out << "serve: stopped (" << s.completed << " requests served)\n";
    return;
  }
  if (sub != "start") {
    out << "usage: serve start|stop|status [addr=<host:port>] [jobs=<n>] "
           "[queue=<n>]\n";
    return;
  }
  if (server_) {
    out << "error: serve: already running on port " << server_->port()
        << "\n";
    return;
  }
  server::ServerOptions options;
  options.store = cache_;  // one store behind the prompt and the wire
  // Trailing keywords, any order, each at most once -- same discipline
  // as synth's option tail: anything unknown is an error, never a
  // silent default.
  bool haveAddr = false, haveJobs = false, haveQueue = false;
  std::string word;
  while (args >> word) {
    if (word.rfind("addr=", 0) == 0 && !haveAddr) {
      const std::string addr = word.substr(5);
      const std::size_t colon = addr.rfind(':');
      int port = 0;
      if (colon == std::string::npos || colon == 0 ||
          !parseNumber(addr.substr(colon + 1), &port) || port < 0 ||
          port > 65535) {
        out << "error: addr= expects host:port\n";
        return;
      }
      options.host = addr.substr(0, colon);
      options.port = port;
      haveAddr = true;
    } else if (word.rfind("jobs=", 0) == 0 && !haveJobs) {
      int jobs = 0;
      if (!parseNumber(word.substr(5), &jobs) || jobs < 1) {
        out << "error: jobs= expects an executor count >= 1\n";
        return;
      }
      options.executors = jobs;
      haveJobs = true;
    } else if (word.rfind("queue=", 0) == 0 && !haveQueue) {
      int queue = 0;
      if (!parseNumber(word.substr(6), &queue) || queue < 1) {
        out << "error: queue= expects a capacity >= 1\n";
        return;
      }
      options.queueCapacity = static_cast<std::size_t>(queue);
      haveQueue = true;
    } else {
      out << "error: unknown serve option '" << word
          << "' (addr=<host:port> jobs=<n> queue=<n>)\n";
      return;
    }
  }
  auto server = std::make_unique<server::Server>(std::move(options));
  std::string error;
  if (!server->start(&error)) {
    out << "error: serve: " << error << "\n";
    return;
  }
  server_ = std::move(server);
  out << "serve: listening on port " << server_->port() << "\n";
}

void Shell::cmdUse(std::istream& args, std::ostream& out) {
  std::string which;
  args >> which;
  if (which == "synth") {
    if (!synthResult_) {
      out << "error: no synthesis has run\n";
      return;
    }
    useSynth_ = true;
  } else if (which == "source") {
    useSynth_ = false;
  } else {
    out << "usage: use synth|source\n";
    return;
  }
  simulator_.reset();
  out << "active network: " << activeNetwork().name() << "\n";
}

void Shell::cmdEmitC(std::istream& args, std::ostream& out) {
  std::string instance;
  if (!(args >> instance)) {
    out << "usage: emitc <prog-instance>\n";
    return;
  }
  if (!synthResult_) {
    out << "error: no synthesis has run\n";
    return;
  }
  for (const auto& b : synthResult_->blocks)
    if (b.instanceName == instance) {
      out << b.cSource;
      return;
    }
  out << "error: no synthesized block named '" << instance << "'\n";
}

}  // namespace eblocks::shell
