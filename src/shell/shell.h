// Scriptable capture/simulate/synthesize shell: the command-line
// counterpart of the paper's Java GUI + interpreter (Figure 2).  Every GUI
// interaction has a command here: placing blocks, drawing connections,
// poking sensors, watching outputs, and invoking synthesis.
//
// The shell is a library so tests can drive it deterministically;
// examples/shell_repl.cpp wraps it for interactive use.
//
// Commands (one per line; '#' comments):
//   new <name...>                  start a fresh design
//   block <instance> <type>        place a catalog block
//   connect <a>.<port> <b>.<port>  wire an output to an input
//   design <table-1 name...>       load a library design
//   netlist                        print the current design as a netlist
//   validate                       structural check
//   sim                            (re)start the simulator
//   set <sensor> <0|1>             drive a sensor and settle
//   press <sensor>                 1-then-0 pulse
//   tick [n]                       advance the timer
//   outputs                        print every output block's value
//   probe <block> <var>            read any block variable
//   synth [paredown|exhaustive|aggregation] [<ins> <outs>]
//   cache [on|off|dir=<path>]      solution cache for synth
//   serve start|stop|status        synthesis daemon over the wire protocol
//   report                         print the last synthesis report
//   use synth|source               select which network 'sim' runs
//   dot                            print the active network as DOT
//   emitc <prog-instance>          print generated C for a synthesized block
//   help                           list commands
//   quit                           leave the shell
#ifndef EBLOCKS_SHELL_SHELL_H_
#define EBLOCKS_SHELL_SHELL_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "core/network.h"
#include "sim/simulator.h"
#include "synth/synthesizer.h"

namespace eblocks::server {
class Server;
}

namespace eblocks::shell {

class Shell {
 public:
  Shell();
  ~Shell();  ///< stops a running `serve` daemon (cancelling its jobs)

  /// Executes one command line; output (including error messages) goes to
  /// `out`.  Returns false when the command asks to quit.
  bool execute(const std::string& line, std::ostream& out);

  /// Reads commands from `in` until EOF or quit.  When `echo` is set each
  /// command is echoed with a "> " prefix (useful for transcripts).
  void run(std::istream& in, std::ostream& out, bool echo = false);

  /// The design being edited.
  const Network& source() const { return source_; }
  /// The synthesized network, if synth ran.
  const std::optional<synth::SynthResult>& synthesized() const {
    return synthResult_;
  }

 private:
  void cmdBlock(std::istream& args, std::ostream& out);
  void cmdConnect(std::istream& args, std::ostream& out);
  void cmdDesign(std::istream& args, std::ostream& out);
  void cmdSim(std::ostream& out);
  void cmdSet(std::istream& args, std::ostream& out, bool press);
  void cmdTick(std::istream& args, std::ostream& out);
  void cmdOutputs(std::ostream& out);
  void cmdProbe(std::istream& args, std::ostream& out);
  void cmdSynth(std::istream& args, std::ostream& out);
  void cmdCache(std::istream& args, std::ostream& out);
  void cmdServe(std::istream& args, std::ostream& out);
  void cmdUse(std::istream& args, std::ostream& out);
  void cmdEmitC(std::istream& args, std::ostream& out);

  const Network& activeNetwork() const;
  bool ensureSimulator(std::ostream& out);

  Network source_;
  std::optional<synth::SynthResult> synthResult_;
  /// Solution cache handed to every synth run while enabled (see the
  /// `cache` command); shared so long-lived stores survive `new`/`design`.
  std::shared_ptr<cache::SolutionStore> cache_;
  /// In-process eblocksd started by `serve start`; shares cache_ so the
  /// wire and the prompt hit one solution store.
  std::unique_ptr<server::Server> server_;
  bool useSynth_ = false;
  std::unique_ptr<sim::Simulator> simulator_;
};

}  // namespace eblocks::shell

#endif  // EBLOCKS_SHELL_SHELL_H_
