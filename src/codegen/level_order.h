// Evaluation ordering of partition members (Section 3.3): syntax trees are
// merged in non-decreasing level order so no block's tree is evaluated
// before its producers' trees.
#ifndef EBLOCKS_CODEGEN_LEVEL_ORDER_H_
#define EBLOCKS_CODEGEN_LEVEL_ORDER_H_

#include <vector>

#include "core/bitset.h"
#include "core/network.h"

namespace eblocks::codegen {

/// Members of `partition` sorted by (level asc, id asc).  `levels` is the
/// full network level table (core/levels.h).
std::vector<BlockId> levelOrder(const BitSet& partition,
                                const std::vector<int>& levels);

}  // namespace eblocks::codegen

#endif  // EBLOCKS_CODEGEN_LEVEL_ORDER_H_
