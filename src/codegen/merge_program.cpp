#include "codegen/merge_program.h"

#include <map>

#include "behavior/merge.h"
#include "behavior/parser.h"
#include "behavior/rename.h"
#include "codegen/level_order.h"

namespace eblocks::codegen {

namespace {

std::string wireName(Endpoint e) {
  return "w" + std::to_string(e.block) + "_" + std::to_string(e.port);
}

// Snapshot copy of a wire, refreshed after its producer runs on non-tick
// passes only.  Members read snapshots so that, during a tick pass, every
// member sees its inputs as they were *before* the tick -- matching the
// original network, where a tick reaches all blocks before any of its
// effects can propagate as packets.  The cascade pass (tick == 0) that
// follows a tick refreshes the snapshots inline, so packet-style
// propagation is single-pass exact.
std::string snapName(Endpoint e) {
  return "ws" + std::to_string(e.block) + "_" + std::to_string(e.port);
}

}  // namespace

MergedProgram mergePartitionProgram(const Network& net,
                                    const BitSet& partition,
                                    const std::vector<int>& levels,
                                    CountingMode mode) {
  MergedProgram merged;
  merged.members = levelOrder(partition, levels);

  // --- assign input ports -------------------------------------------------
  // Iterate members in id order (deterministic), their input ports in
  // order, and allocate programmable input ports for externally-driven
  // connections.  In kSignals mode connections sharing the same external
  // source endpoint share a port.
  std::map<Connection, int> inPortOfConnection;
  {
    std::map<Endpoint, int> portOfSource;  // kSignals only
    partition.forEach([&](std::size_t bi) {
      const BlockId b = static_cast<BlockId>(bi);
      const BlockType& t = *net.block(b).type;
      for (int p = 0; p < t.inputCount(); ++p) {
        const auto driver = net.driverOf(b, p);
        if (!driver)
          throw CodegenError("mergePartitionProgram: input '" +
                             t.inputName(p) + "' of '" + net.block(b).name +
                             "' is not driven");
        if (partition.test(driver->from.block)) continue;  // internal wire
        if (mode == CountingMode::kSignals) {
          const auto it = portOfSource.find(driver->from);
          if (it != portOfSource.end()) {
            inPortOfConnection[*driver] = it->second;
            merged.inputEdges[static_cast<std::size_t>(it->second)]
                .push_back(*driver);
            continue;
          }
          portOfSource.emplace(driver->from, merged.inputCount());
        }
        inPortOfConnection[*driver] = merged.inputCount();
        merged.inputEdges.push_back({*driver});
      }
    });
  }

  // --- assign output ports ------------------------------------------------
  {
    std::map<Endpoint, int> portOfSource;  // kSignals only
    partition.forEach([&](std::size_t bi) {
      const BlockId b = static_cast<BlockId>(bi);
      const BlockType& t = *net.block(b).type;
      for (int p = 0; p < t.outputCount(); ++p) {
        const Endpoint src{b, static_cast<std::uint16_t>(p)};
        for (const Connection& c : net.fanoutOf(b, p)) {
          if (partition.test(c.to.block)) continue;  // stays internal
          if (mode == CountingMode::kSignals) {
            const auto it = portOfSource.find(src);
            if (it != portOfSource.end()) {
              merged.outputEdges[static_cast<std::size_t>(it->second)]
                  .push_back(c);
              continue;
            }
            portOfSource.emplace(src, merged.outputCount());
          }
          merged.outputEdges.push_back({c});
          merged.outputSources.push_back(src);
        }
      }
    });
  }

  // --- build per-member programs ------------------------------------------
  std::vector<behavior::Program> parts;

  // Wire declarations first so merged state initialization covers them.
  {
    behavior::Program wireDecls;
    partition.forEach([&](std::size_t bi) {
      const BlockId b = static_cast<BlockId>(bi);
      const BlockType& t = *net.block(b).type;
      for (int p = 0; p < t.outputCount(); ++p) {
        const Endpoint e{b, static_cast<std::uint16_t>(p)};
        wireDecls.statements.push_back(
            behavior::makeVarDecl(wireName(e), behavior::makeIntLit(0)));
        wireDecls.statements.push_back(
            behavior::makeVarDecl(snapName(e), behavior::makeIntLit(0)));
      }
    });
    parts.push_back(std::move(wireDecls));
  }

  for (BlockId b : merged.members) {
    const BlockType& t = *net.block(b).type;
    behavior::Program prog;
    try {
      prog = behavior::parse(t.behaviorSource());
    } catch (const std::exception& e) {
      throw CodegenError("mergePartitionProgram: behavior of '" +
                         net.block(b).name + "': " + e.what());
    }
    behavior::RenameMap renames;
    // Input ports -> wire of internal driver, or programmable input port.
    for (int p = 0; p < t.inputCount(); ++p) {
      const Connection driver = *net.driverOf(b, p);
      if (partition.test(driver.from.block)) {
        renames[t.inputName(p)] = snapName(driver.from);
      } else {
        renames[t.inputName(p)] =
            "in" + std::to_string(inPortOfConnection.at(driver));
      }
    }
    // Output ports -> wires.
    for (int p = 0; p < t.outputCount(); ++p)
      renames[t.outputName(p)] =
          wireName(Endpoint{b, static_cast<std::uint16_t>(p)});
    // Everything else (state variables) gets a per-member prefix; `tick`
    // is shared by design (all sequential members tick together).
    auto prefixName = [&](const std::string& n) {
      if (n == "tick" || renames.contains(n)) return;
      renames[n] = "b" + std::to_string(b) + "_" + n;
    };
    for (const std::string& n : behavior::declaredVars(prog)) prefixName(n);
    for (const std::string& n : behavior::referencedNames(prog))
      prefixName(n);
    for (const std::string& n : behavior::assignedNames(prog)) prefixName(n);
    behavior::renameVars(prog, renames);
    // Refresh this member's wire snapshots on non-tick passes, inline so
    // downstream members still cascade within a single packet activation.
    for (int p = 0; p < t.outputCount(); ++p) {
      const Endpoint e{b, static_cast<std::uint16_t>(p)};
      std::vector<behavior::StmtPtr> refresh;
      refresh.push_back(behavior::makeAssign(
          snapName(e), behavior::makeVarRef(wireName(e))));
      prog.statements.push_back(behavior::makeIf(
          behavior::makeBinary(behavior::BinaryOp::kEq,
                               behavior::makeVarRef("tick"),
                               behavior::makeIntLit(0)),
          std::move(refresh)));
    }
    parts.push_back(std::move(prog));
  }

  // --- re-export wires on the programmable outputs -------------------------
  {
    behavior::Program exports;
    for (int k = 0; k < merged.outputCount(); ++k)
      exports.statements.push_back(behavior::makeAssign(
          "out" + std::to_string(k),
          behavior::makeVarRef(
              wireName(merged.outputSources[static_cast<std::size_t>(k)]))));
    parts.push_back(std::move(exports));
  }

  merged.program = behavior::mergePrograms(std::move(parts));
  return merged;
}

}  // namespace eblocks::codegen
