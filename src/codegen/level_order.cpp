#include "codegen/level_order.h"

#include <algorithm>

namespace eblocks::codegen {

std::vector<BlockId> levelOrder(const BitSet& partition,
                                const std::vector<int>& levels) {
  std::vector<BlockId> members;
  partition.forEach(
      [&](std::size_t b) { members.push_back(static_cast<BlockId>(b)); });
  std::stable_sort(members.begin(), members.end(),
                   [&](BlockId a, BlockId b) {
                     return levels[a] != levels[b] ? levels[a] < levels[b]
                                                   : a < b;
                   });
  return members;
}

}  // namespace eblocks::codegen
