// Building the programmable block's behavior for one partition
// (Section 3.3).
//
// For every member block, in non-decreasing level order, the member's
// syntax tree is cloned and rewired:
//   - input ports driven from inside the partition become internal wire
//     variables (communication "will occur internally in a programmable
//     block via variables");
//   - input ports driven from outside become the programmable block's
//     input ports in0..in{i-1};
//   - output ports become internal wires, re-exported through out0.. when
//     consumed outside the partition;
//   - state variables are prefixed with the member id ("the conflict is
//     resolved through variable renaming").
// The rewired trees are concatenated (declarations hoisted) into one
// program that the simulator interprets directly and the C emitter
// translates for the physical block.
#ifndef EBLOCKS_CODEGEN_MERGE_PROGRAM_H_
#define EBLOCKS_CODEGEN_MERGE_PROGRAM_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "behavior/ast.h"
#include "core/bitset.h"
#include "core/network.h"
#include "core/subgraph.h"

namespace eblocks::codegen {

class CodegenError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The merged behavior plus the port maps needed to rewire the network.
struct MergedProgram {
  behavior::Program program;

  /// Input ports in order (in0, in1, ...).  inputEdges[k] lists the
  /// original connections served by port k: exactly one in kEdges mode;
  /// one or more (same external source) in kSignals mode.
  std::vector<std::vector<Connection>> inputEdges;

  /// Output ports in order (out0, ...).  outputEdges[k] lists the original
  /// boundary-crossing connections re-driven by port k, and
  /// outputSources[k] is the internal endpoint whose wire feeds it.
  std::vector<std::vector<Connection>> outputEdges;
  std::vector<Endpoint> outputSources;

  /// Members in evaluation (level) order, for reports.
  std::vector<BlockId> members;

  int inputCount() const { return static_cast<int>(inputEdges.size()); }
  int outputCount() const { return static_cast<int>(outputEdges.size()); }
};

/// Merges the behaviors of `partition`'s members.  `levels` is the level
/// table of `net` (core/levels.h).  Throws CodegenError on undriven member
/// inputs or unparsable member behaviors.
MergedProgram mergePartitionProgram(const Network& net,
                                    const BitSet& partition,
                                    const std::vector<int>& levels,
                                    CountingMode mode);

}  // namespace eblocks::codegen

#endif  // EBLOCKS_CODEGEN_MERGE_PROGRAM_H_
