// C code emission for programmable blocks (Section 3.3: "translate the
// syntax tree into C code for downloading and use in a physical block").
//
// The emitted unit is self-contained C99 (no vendor headers): a state
// struct, a reset function, and an eval function.  The physical target in
// the paper is a Microchip PIC16F628 (2KB program memory); we additionally
// emit an optional main-loop skeleton documenting the packet RX/TX hooks a
// firmware port would fill in, and an optional self-test harness used by
// the integration tests to co-simulate emitted C against the interpreter.
#ifndef EBLOCKS_CODEGEN_C_EMITTER_H_
#define EBLOCKS_CODEGEN_C_EMITTER_H_

#include <string>

#include "codegen/merge_program.h"

namespace eblocks::codegen {

struct CEmitOptions {
  std::string symbolPrefix = "eb";  ///< prefix for emitted symbols
  bool emitMainSkeleton = false;    ///< PIC-style main loop with stubs
  bool emitTestHarness = false;     ///< stdin/stdout vector harness (main())
};

/// Emits a compilable C translation unit for the merged program.
/// Throws CodegenError when the program references names that are neither
/// declared variables, ports, nor `tick`.
std::string emitC(const MergedProgram& merged, const CEmitOptions& options = {});

}  // namespace eblocks::codegen

#endif  // EBLOCKS_CODEGEN_C_EMITTER_H_
