#include "sim/batch_simulator.h"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <string_view>
#include <tuple>
#include <unordered_map>

#include "behavior/parser.h"
#include "sim/simulator.h"  // SimError

namespace eblocks::sim {

namespace {

using behavior::BinaryOp;
using behavior::ExprKind;
using behavior::StmtKind;
using behavior::UnaryOp;

// --- compiled (slot-indexed) behavior programs -----------------------------
//
// The scalar simulator resolves variable names through a per-block
// unordered_map on every read and write; at 64 lanes per evaluation that
// hashing would dominate.  Programs are compiled once into arenas of
// slot-indexed expressions and statements.

struct CompiledExpr {
  ExprKind kind = ExprKind::kIntLit;
  UnaryOp uop = UnaryOp::kNot;
  BinaryOp bop = BinaryOp::kAdd;
  int lhs = -1;
  int rhs = -1;
  int slot = -1;           // kVarRef
  std::int64_t lit = 0;    // kIntLit
};

struct CompiledStmt {
  StmtKind kind = StmtKind::kAssign;
  int slot = -1;  // kVarDecl / kAssign target
  int expr = -1;  // decl init / assign rhs / if condition
  std::vector<int> thenBody;
  std::vector<int> elseBody;
};

struct CompiledProgram {
  std::vector<CompiledExpr> exprs;
  std::vector<CompiledStmt> stmts;
  std::vector<int> top;                         // top-level stmt indices
  std::vector<std::pair<int, int>> varInits;    // (slot, expr), top level
  std::unordered_map<std::string, int> slotOf;  // name -> slot
  int slotCount = 0;
};

/// Per-block compiled program plus the pre-resolved builtin slots.
struct BlockProgram {
  CompiledProgram prog;
  std::vector<int> inSlots;   // input port -> slot
  std::vector<int> outSlots;  // output port -> slot
  int tickSlot = -1;
  int envSlot = -1;  // sensors only
  // Pure truth-table fast path (detectTruthTable): set when the behavior
  // is an exhaustive if-chain over boolean inputs (the catalog's logic
  // gates).  Bit c of ttMinterms is the output for input combination c,
  // where bit i of c is input i's value.  Exact only while every input
  // slot is packed (all lanes 0/1) -- checked per activation.
  bool ttValid = false;
  std::uint64_t ttMinterms = 0;
};

/// Matches the exhaustive if-chain truthTable{2,3}Source emits: 2^N
/// top-level statements `if (in0 == c0 && in1 == c1 ...) { out = 0|1; }`,
/// one per input combination, nothing else.  With boolean inputs each
/// lane matches exactly one branch, so the whole program collapses to a
/// minterm table evaluated with word-parallel bit ops.
bool detectTruthTable(const BlockType& type,
                      const behavior::Program& program,
                      std::uint64_t* minterms) {
  const int n = type.inputCount();
  if (n < 1 || n > 6 || type.outputCount() != 1) return false;
  const std::size_t combos = std::size_t{1} << n;
  if (program.statements.size() != combos) return false;
  std::unordered_map<std::string_view, int> inputIndex;
  for (int i = 0; i < n; ++i) inputIndex.emplace(type.inputName(i), i);

  // Flattens an `&&` tree of `input == 0|1` leaves into a combo index.
  const auto flattenCombo = [&](const behavior::Expr& e, std::uint32_t* combo,
                                std::uint32_t* seenInputs, auto&& self) -> bool {
    if (e.kind == ExprKind::kBinary && e.bop == BinaryOp::kAnd)
      return self(*e.lhs, combo, seenInputs, self) &&
             self(*e.rhs, combo, seenInputs, self);
    if (e.kind != ExprKind::kBinary || e.bop != BinaryOp::kEq) return false;
    if (e.lhs->kind != ExprKind::kVarRef ||
        e.rhs->kind != ExprKind::kIntLit)
      return false;
    const auto it = inputIndex.find(e.lhs->name);
    if (it == inputIndex.end()) return false;
    const std::int64_t v = e.rhs->intValue;
    if (v != 0 && v != 1) return false;
    if ((*seenInputs >> it->second) & 1u) return false;  // input repeated
    *seenInputs |= std::uint32_t{1} << it->second;
    *combo |= static_cast<std::uint32_t>(v) << it->second;
    return true;
  };

  std::uint64_t table = 0, seenCombos = 0;
  for (const behavior::StmtPtr& s : program.statements) {
    if (s->kind != StmtKind::kIf || !s->elseBody.empty() ||
        s->thenBody.size() != 1)
      return false;
    const behavior::Stmt& body = *s->thenBody.front();
    if (body.kind != StmtKind::kAssign || body.name != type.outputName(0) ||
        body.expr->kind != ExprKind::kIntLit ||
        (body.expr->intValue != 0 && body.expr->intValue != 1))
      return false;
    std::uint32_t combo = 0, seenInputs = 0;
    if (!flattenCombo(*s->expr, &combo, &seenInputs, flattenCombo))
      return false;
    if (seenInputs != (std::uint32_t{1} << n) - 1) return false;
    if ((seenCombos >> combo) & 1u) return false;  // combo repeated
    seenCombos |= std::uint64_t{1} << combo;
    table |= static_cast<std::uint64_t>(body.expr->intValue) << combo;
  }
  if (seenCombos != (combos == 64 ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << combos) - 1))
    return false;
  *minterms = table;
  return true;
}

class Compiler {
 public:
  explicit Compiler(const std::string& blockName) : blockName_(blockName) {}

  BlockProgram compile(const BlockType& type,
                       const behavior::Program& program) {
    BlockProgram bp;
    // Pre-bind the names the simulator binds before the first activation
    // (ports, tick, env), in a deterministic slot order.
    for (int p = 0; p < type.inputCount(); ++p)
      bp.inSlots.push_back(slotFor(type.inputName(p)));
    for (int p = 0; p < type.outputCount(); ++p)
      bp.outSlots.push_back(slotFor(type.outputName(p)));
    bp.tickSlot = slotFor("tick");
    if (type.blockClass() == BlockClass::kSensor) bp.envSlot = slotFor("env");
    prebound_ = out_.slotOf;

    for (const behavior::StmtPtr& s : program.statements) {
      const int idx = compileStmt(*s);
      out_.top.push_back(idx);
      if (s->kind == StmtKind::kVarDecl)
        out_.varInits.emplace_back(out_.stmts[static_cast<std::size_t>(idx)].slot,
                                   out_.stmts[static_cast<std::size_t>(idx)].expr);
    }
    // Closure check: every name read must be pre-bound, declared, or
    // assigned somewhere (the c_emitter closure rule, relaxed to include
    // plain assignments).  The scalar simulator binds dynamically and
    // would throw EvalError at activation time instead.
    for (const std::string& name : referenced_)
      if (!prebound_.contains(name) && !bound_.contains(name))
        throw SimError("batch: block '" + blockName_ + "': behavior reads '" +
                       name + "' which is never bound");
    out_.slotCount = static_cast<int>(out_.slotOf.size());
    bp.prog = std::move(out_);
    return bp;
  }

 private:
  int slotFor(const std::string& name) {
    const auto it = out_.slotOf.find(name);
    if (it != out_.slotOf.end()) return it->second;
    const int slot = static_cast<int>(out_.slotOf.size());
    out_.slotOf.emplace(name, slot);
    return slot;
  }

  int compileExpr(const behavior::Expr& e) {
    CompiledExpr ce;
    ce.kind = e.kind;
    switch (e.kind) {
      case ExprKind::kIntLit:
        ce.lit = e.intValue;
        break;
      case ExprKind::kVarRef:
        ce.slot = slotFor(e.name);
        referenced_.insert(e.name);
        break;
      case ExprKind::kUnary:
        ce.uop = e.uop;
        ce.lhs = compileExpr(*e.lhs);
        break;
      case ExprKind::kBinary:
        ce.bop = e.bop;
        ce.lhs = compileExpr(*e.lhs);
        ce.rhs = compileExpr(*e.rhs);
        break;
    }
    out_.exprs.push_back(ce);
    return static_cast<int>(out_.exprs.size()) - 1;
  }

  int compileStmt(const behavior::Stmt& s) {
    CompiledStmt cs;
    cs.kind = s.kind;
    switch (s.kind) {
      case StmtKind::kVarDecl:
      case StmtKind::kAssign:
        cs.slot = slotFor(s.name);
        bound_.insert(s.name);
        cs.expr = compileExpr(*s.expr);
        break;
      case StmtKind::kIf:
        cs.expr = compileExpr(*s.expr);
        for (const behavior::StmtPtr& t : s.thenBody)
          cs.thenBody.push_back(compileStmt(*t));
        for (const behavior::StmtPtr& t : s.elseBody)
          cs.elseBody.push_back(compileStmt(*t));
        break;
    }
    out_.stmts.push_back(std::move(cs));
    return static_cast<int>(out_.stmts.size()) - 1;
  }

  const std::string& blockName_;
  CompiledProgram out_;
  std::unordered_map<std::string, int> prebound_;
  std::set<std::string> referenced_;
  std::set<std::string> bound_;  // declared or assigned anywhere
};

/// Expression result: packed word or borrowed wide array (scratch buffer
/// or environment slot storage; valid until the parent consumes it).
struct Val {
  bool packed = true;
  LaneMask bits = 0;
  const std::int64_t* wide = nullptr;

  std::int64_t lane(int i) const {
    return packed ? static_cast<std::int64_t>((bits >> i) & 1u) : wide[i];
  }
  LaneMask truthy() const {
    if (packed) return bits;
    LaneMask m = 0;
    for (int i = 0; i < kLanes; ++i)
      m |= static_cast<LaneMask>(wide[i] != 0) << i;
    return m;
  }
};

}  // namespace

// --- the batch simulator ---------------------------------------------------

struct BatchSimulator::Impl {
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;  // FIFO order among same-time events
    Endpoint dst;
    std::uint32_t payload;  // index into payloads_
    bool operator>(const Event& o) const {
      return std::tie(time, seq) > std::tie(o.time, o.seq);
    }
  };

  Impl(const Network& net, BatchSimOptions opts) : net_(&net), opts_(opts) {
    const std::size_t n = net.blockCount();
    programs_.reserve(n);
    envs_.resize(n);
    outPortBase_.resize(n + 1, 0);
    for (BlockId b = 0; b < n; ++b) {
      const BlockType& t = *net.block(b).type;
      behavior::Program parsed;
      try {
        parsed = behavior::parse(t.behaviorSource());
      } catch (const std::exception& e) {
        throw SimError("block '" + net.block(b).name + "' (" + t.name() +
                       "): " + e.what());
      }
      Compiler compiler(net.block(b).name);
      programs_.push_back(compiler.compile(t, parsed));
      programs_.back().ttValid =
          detectTruthTable(t, parsed, &programs_.back().ttMinterms);
      envs_[b].resize(
          static_cast<std::size_t>(programs_.back().prog.slotCount));
      outPortBase_[b + 1] =
          outPortBase_[b] + static_cast<std::size_t>(t.outputCount());
    }
    lastEmitted_.resize(outPortBase_[n]);
    inBatch_.assign(n, 0);
    reset(kAllLanes);
  }

  // --- lane-parallel expression evaluation ---------------------------------

  std::int64_t* scratch(int depth) {
    while (static_cast<int>(scratch_.size()) <= depth)
      scratch_.push_back(
          std::make_unique<std::array<std::int64_t, kLanes>>());
    return scratch_[static_cast<std::size_t>(depth)]->data();
  }

  void fault(LaneMask lanes, const char* what) {
    if (!lanes) return;
    if (!faultLanes_) faultMsg_ = what;
    faultLanes_ |= lanes;
  }

  Val evalExpr(const BlockProgram& bp, std::vector<LaneVector>& env, int idx,
               LaneMask mask, int depth) {
    const CompiledExpr& e = bp.prog.exprs[static_cast<std::size_t>(idx)];
    switch (e.kind) {
      case ExprKind::kIntLit: {
        if (e.lit == 0 || e.lit == 1)
          return Val{true, e.lit ? kAllLanes : 0, nullptr};
        std::int64_t* out = scratch(depth);
        for (int i = 0; i < kLanes; ++i) out[i] = e.lit;
        return Val{false, 0, out};
      }
      case ExprKind::kVarRef: {
        const LaneVector& v = env[static_cast<std::size_t>(e.slot)];
        if (v.packed()) return Val{true, v.bits(), nullptr};
        return Val{false, 0, v.wide()};
      }
      case ExprKind::kUnary: {
        const Val v = evalExpr(bp, env, e.lhs, mask, depth + 1);
        if (e.uop == UnaryOp::kNot) return Val{true, ~v.truthy(), nullptr};
        // kNeg
        if (v.packed && v.bits == 0) return Val{true, 0, nullptr};
        std::int64_t* out = scratch(depth);
        for (int i = 0; i < kLanes; ++i) out[i] = -v.lane(i);
        return Val{false, 0, out};
      }
      case ExprKind::kBinary:
        return evalBinary(bp, env, e, mask, depth);
    }
    throw SimError("batch: unreachable expression kind");
  }

  Val evalBinary(const BlockProgram& bp, std::vector<LaneVector>& env,
                 const CompiledExpr& e, LaneMask mask, int depth) {
    // Short-circuit logical operators evaluate the right side only in the
    // lanes the scalar interpreter would (faults must match per lane).
    if (e.bop == BinaryOp::kAnd) {
      const Val a = evalExpr(bp, env, e.lhs, mask, depth + 1);
      const LaneMask am = a.truthy() & mask;
      if (am == 0) return Val{true, 0, nullptr};
      const Val b = evalExpr(bp, env, e.rhs, am, depth + 1);
      return Val{true, am & b.truthy(), nullptr};
    }
    if (e.bop == BinaryOp::kOr) {
      const Val a = evalExpr(bp, env, e.lhs, mask, depth + 1);
      const LaneMask at = a.truthy();
      const LaneMask rm = mask & ~at;
      if (rm == 0) return Val{true, at, nullptr};
      const Val b = evalExpr(bp, env, e.rhs, rm, depth + 1);
      return Val{true, at | b.truthy(), nullptr};
    }

    const Val a = evalExpr(bp, env, e.lhs, mask, depth + 1);
    const Val b = evalExpr(bp, env, e.rhs, mask, depth + 2);

    if (a.packed && b.packed) {
      // Whole-word fast paths over 64 boolean lanes.
      switch (e.bop) {
        case BinaryOp::kEq: return Val{true, ~(a.bits ^ b.bits), nullptr};
        case BinaryOp::kNe: return Val{true, a.bits ^ b.bits, nullptr};
        case BinaryOp::kLt: return Val{true, ~a.bits & b.bits, nullptr};
        case BinaryOp::kLe: return Val{true, ~a.bits | b.bits, nullptr};
        case BinaryOp::kGt: return Val{true, a.bits & ~b.bits, nullptr};
        case BinaryOp::kGe: return Val{true, a.bits | ~b.bits, nullptr};
        case BinaryOp::kMul: return Val{true, a.bits & b.bits, nullptr};
        case BinaryOp::kAdd:
          if ((a.bits & b.bits & mask) == 0)
            return Val{true, a.bits | b.bits, nullptr};
          break;  // a carry somewhere: widen
        case BinaryOp::kSub:
          if ((~a.bits & b.bits & mask) == 0)
            return Val{true, a.bits & ~b.bits, nullptr};
          break;  // a negative result somewhere: widen
        default:
          break;
      }
    }

    switch (e.bop) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        LaneMask bits = 0;
        for (int i = 0; i < kLanes; ++i) {
          const std::int64_t x = a.lane(i), y = b.lane(i);
          bool r = false;
          switch (e.bop) {
            case BinaryOp::kEq: r = x == y; break;
            case BinaryOp::kNe: r = x != y; break;
            case BinaryOp::kLt: r = x < y; break;
            case BinaryOp::kLe: r = x <= y; break;
            case BinaryOp::kGt: r = x > y; break;
            default: r = x >= y; break;  // kGe
          }
          bits |= static_cast<LaneMask>(r) << i;
        }
        return Val{true, bits, nullptr};
      }
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul: {
        std::int64_t* out = scratch(depth);
        for (int i = 0; i < kLanes; ++i) {
          const std::int64_t x = a.lane(i), y = b.lane(i);
          out[i] = e.bop == BinaryOp::kAdd   ? x + y
                   : e.bop == BinaryOp::kSub ? x - y
                                             : x * y;
        }
        return Val{false, 0, out};
      }
      case BinaryOp::kDiv:
      case BinaryOp::kMod: {
        std::int64_t* out = scratch(depth);
        LaneMask zero = 0, overflow = 0;
        for (int i = 0; i < kLanes; ++i) {
          const std::int64_t x = a.lane(i), y = b.lane(i);
          if (y == 0) {
            zero |= LaneMask{1} << i;
            out[i] = 0;
          } else if (x == std::numeric_limits<std::int64_t>::min() &&
                     y == -1) {
            overflow |= LaneMask{1} << i;
            out[i] = 0;
          } else {
            out[i] = e.bop == BinaryOp::kDiv ? x / y : x % y;
          }
        }
        fault(zero & mask, e.bop == BinaryOp::kDiv ? "division by zero"
                                                   : "modulo by zero");
        fault(overflow & mask, "division overflow");
        return Val{false, 0, out};
      }
      default:
        throw SimError("batch: unreachable binary operator");
    }
  }

  void assignSlot(LaneVector& slot, const Val& v, LaneMask mask) {
    if ((mask & activeMask_) == activeMask_) {
      // Covers every live lane: inactive lanes carry unspecified values,
      // so a whole-vector overwrite is allowed (and keeps packing tight).
      if (v.packed) {
        slot = LaneVector::fromBits(v.bits);
      } else {
        slot.setWide(v.wide);
      }
      return;
    }
    if (slot.packed() && v.packed) {
      slot.mergeFrom(LaneVector::fromBits(v.bits), mask);
      return;
    }
    slot.widen();
    std::int64_t* w = slot.wideData();
    for (int i = 0; i < kLanes; ++i)
      if ((mask >> i) & 1u) w[i] = v.lane(i);
  }

  void execStmts(const BlockProgram& bp, std::vector<LaneVector>& env,
                 const std::vector<int>& stmts, LaneMask mask, int depth) {
    for (const int si : stmts) {
      const CompiledStmt& s = bp.prog.stmts[static_cast<std::size_t>(si)];
      switch (s.kind) {
        case StmtKind::kVarDecl:
          break;  // state persists between activations
        case StmtKind::kAssign: {
          const Val v = evalExpr(bp, env, s.expr, mask, depth);
          assignSlot(env[static_cast<std::size_t>(s.slot)], v, mask);
          break;
        }
        case StmtKind::kIf: {
          const LaneMask t =
              evalExpr(bp, env, s.expr, mask, depth).truthy() & mask;
          const LaneMask f = mask & ~t;
          if (t) execStmts(bp, env, s.thenBody, t, depth + 1);
          if (f) execStmts(bp, env, s.elseBody, f, depth + 1);
          break;
        }
      }
    }
  }

  /// Truth-table fast path: all 64 lanes of a logic gate in a handful of
  /// word ops.  Requires every input slot packed (all lanes boolean) --
  /// then each lane matches exactly one if-chain branch, so the minterm
  /// sum is the interpreter's result in every lane, and the whole-vector
  /// overwrite is covered by the inactive-lanes-unspecified contract.
  /// Returns false (caller interprets) when any input has widened.
  bool evalTruthTable(const BlockProgram& bp, std::vector<LaneVector>& env) {
    const int n = static_cast<int>(bp.inSlots.size());
    LaneMask in[6];
    for (int i = 0; i < n; ++i) {
      const LaneVector& v = env[static_cast<std::size_t>(bp.inSlots[
          static_cast<std::size_t>(i)])];
      if (!v.packed()) return false;
      in[i] = v.bits();
    }
    LaneMask out = 0;
    for (std::uint32_t c = 0; c < (std::uint32_t{1} << n); ++c) {
      if (!((bp.ttMinterms >> c) & 1u)) continue;
      LaneMask m = kAllLanes;
      for (int i = 0; i < n; ++i) m &= ((c >> i) & 1u) ? in[i] : ~in[i];
      out |= m;
    }
    env[static_cast<std::size_t>(bp.outSlots[0])] = LaneVector::fromBits(out);
    return true;
  }

  // --- the event loop (mirrors sim/simulator.cpp) --------------------------

  void activate(BlockId b, LaneMask tickLanes) {
    ++activations_;
    const BlockProgram& bp = programs_[b];
    std::vector<LaneVector>& env = envs_[b];
    env[static_cast<std::size_t>(bp.tickSlot)] =
        LaneVector::fromBits(tickLanes);
    if (!bp.ttValid || !evalTruthTable(bp, env))
      execStmts(bp, env, bp.prog.top, activeMask_, 0);
    const BlockType& t = *net_->block(b).type;
    for (int p = 0; p < t.outputCount(); ++p) {
      const LaneVector& v = env[static_cast<std::size_t>(bp.outSlots[
          static_cast<std::size_t>(p)])];
      LaneVector& last =
          lastEmitted_[outPortBase_[b] + static_cast<std::size_t>(p)];
      if (laneDiff(v, last) & activeMask_) {
        last = v;
        scheduleFanout(b, p, v);
      }
    }
  }

  void scheduleFanout(BlockId b, int port, const LaneVector& value) {
    const auto fanout = net_->fanoutOf(b, port);
    if (fanout.empty()) return;
    const auto payload = static_cast<std::uint32_t>(payloads_.size());
    payloads_.push_back(value);  // snapshot: later changes ship separately
    for (const Connection& c : fanout)
      queue_.push(Event{now_ + opts_.hopLatency, seq_++, c.to, payload});
  }

  void settle() {
    std::uint64_t budget =
        opts_.maxEventsPerSettle *
        static_cast<std::uint64_t>(std::max(1, std::popcount(activeMask_)));
    while (!queue_.empty()) {
      // Drain every packet arriving at this instant, then evaluate each
      // destination once -- identical batching to the scalar simulator.
      const std::uint64_t t = queue_.top().time;
      now_ = t;
      batch_.clear();
      order_.clear();
      while (!queue_.empty() && queue_.top().time == t) {
        if (budget-- == 0)
          throw SimError(
              "batch settle: exceeded event budget (" +
              std::to_string(opts_.maxEventsPerSettle) +
              " per lane); some lane may oscillate");
        batch_.push_back(queue_.top());
        queue_.pop();
      }
      for (const Event& ev : batch_) {  // seq order: later packets win
        ++packetsDelivered_;
        const BlockProgram& bp = programs_[ev.dst.block];
        envs_[ev.dst.block][static_cast<std::size_t>(
            bp.inSlots[ev.dst.port])] = payloads_[ev.payload];
        if (!inBatch_[ev.dst.block]) {
          inBatch_[ev.dst.block] = 1;
          order_.push_back(ev.dst.block);
        }
      }
      for (const BlockId b : order_) {
        inBatch_[b] = 0;
        activate(b, 0);
      }
    }
    payloads_.clear();  // every in-flight snapshot has been consumed
  }

  void reset(LaneMask active) {
    activeMask_ = active;
    faultLanes_ = 0;
    faultMsg_.clear();
    now_ = 0;
    seq_ = 0;
    packetsDelivered_ = 0;
    activations_ = 0;
    while (!queue_.empty()) queue_.pop();
    payloads_.clear();
    for (LaneVector& v : lastEmitted_) v = LaneVector();
    for (BlockId b = 0; b < net_->blockCount(); ++b) {
      std::vector<LaneVector>& env = envs_[b];
      for (LaneVector& v : env) v = LaneVector();
      const BlockProgram& bp = programs_[b];
      for (const auto& [slot, expr] : bp.prog.varInits) {
        const Val v = evalExpr(bp, env, expr, activeMask_, 0);
        assignSlot(env[static_cast<std::size_t>(slot)], v, kAllLanes);
      }
    }
    // Power-up evaluation wave, as in the scalar simulator.
    for (BlockId b = 0; b < net_->blockCount(); ++b) activate(b, 0);
    settle();
  }

  void setSensor(BlockId sensor, LaneMask lanes, const LaneVector& values) {
    if (!net_->isSensor(sensor))
      throw SimError("setSensor: block '" + net_->block(sensor).name +
                     "' is not a sensor");
    const BlockProgram& bp = programs_[sensor];
    envs_[sensor][static_cast<std::size_t>(bp.envSlot)].mergeFrom(
        values, lanes & activeMask_);
    activate(sensor, 0);
  }

  void tick(LaneMask lanes) {
    // Two-pass tick, as in the scalar simulator: every sequential block
    // processes the tick against its pre-tick inputs, then a cascade pass
    // with tick = 0.  Lanes outside `lanes` see tick = 0 and unchanged
    // inputs in both passes -- idempotent no-ops.
    lanes &= activeMask_;
    for (BlockId b = 0; b < net_->blockCount(); ++b)
      if (net_->block(b).type->sequential()) activate(b, lanes);
    for (BlockId b = 0; b < net_->blockCount(); ++b)
      if (net_->block(b).type->sequential()) activate(b, 0);
    settle();
  }

  void apply(const BatchStep& step) {
    for (const BatchStep::SensorWrite& w : step.writes)
      setSensor(w.sensor, w.lanes, w.values);
    if (step.tickLanes & activeMask_) tick(step.tickLanes);
    settle();
  }

  const LaneVector& probeLanes(BlockId block, const std::string& var) const {
    static const LaneVector kZero;
    const auto it = programs_[block].prog.slotOf.find(var);
    if (it == programs_[block].prog.slotOf.end()) return kZero;
    return envs_[block][static_cast<std::size_t>(it->second)];
  }

  const Network* net_;
  BatchSimOptions opts_;
  LaneMask activeMask_ = kAllLanes;
  std::vector<BlockProgram> programs_;          // per block
  std::vector<std::vector<LaneVector>> envs_;   // per block, per slot
  std::vector<LaneVector> lastEmitted_;         // per (block, port), flat
  std::vector<std::size_t> outPortBase_;        // block -> index into flat
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<LaneVector> payloads_;  // in-flight packet snapshots
  std::vector<std::unique_ptr<std::array<std::int64_t, kLanes>>> scratch_;
  std::vector<Event> batch_;     // same-instant drain buffer
  std::vector<BlockId> order_;   // activation order within an instant
  std::vector<char> inBatch_;    // per block: queued in order_
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t packetsDelivered_ = 0;
  std::uint64_t activations_ = 0;
  LaneMask faultLanes_ = 0;
  std::string faultMsg_;
};

BatchSimulator::BatchSimulator(const Network& net, BatchSimOptions opts)
    : impl_(std::make_unique<Impl>(net, opts)) {}
BatchSimulator::~BatchSimulator() = default;
BatchSimulator::BatchSimulator(BatchSimulator&&) noexcept = default;
BatchSimulator& BatchSimulator::operator=(BatchSimulator&&) noexcept =
    default;

void BatchSimulator::reset(LaneMask active) { impl_->reset(active); }
LaneMask BatchSimulator::activeLanes() const { return impl_->activeMask_; }

void BatchSimulator::setSensor(BlockId sensor, LaneMask lanes,
                               const LaneVector& values) {
  impl_->setSensor(sensor, lanes, values);
}

void BatchSimulator::setSensor(const std::string& name, LaneMask lanes,
                               std::int64_t value) {
  const auto id = impl_->net_->findBlock(name);
  if (!id) throw SimError("setSensor: no block named '" + name + "'");
  impl_->setSensor(*id, lanes, LaneVector::splat(value));
}

void BatchSimulator::settle() { impl_->settle(); }
void BatchSimulator::tick(LaneMask lanes) { impl_->tick(lanes); }
void BatchSimulator::apply(const BatchStep& step) { impl_->apply(step); }

std::int64_t BatchSimulator::outputValue(BlockId outputBlock,
                                         int lane) const {
  return outputLanes(outputBlock).lane(lane);
}

const LaneVector& BatchSimulator::outputLanes(BlockId outputBlock) const {
  if (!impl_->net_->isOutput(outputBlock))
    throw SimError("outputValue: block '" +
                   impl_->net_->block(outputBlock).name +
                   "' is not an output block");
  return impl_->probeLanes(outputBlock, "display");
}

const LaneVector& BatchSimulator::probeLanes(BlockId block,
                                             const std::string& var) const {
  return impl_->probeLanes(block, var);
}

std::int64_t BatchSimulator::probe(BlockId block, const std::string& var,
                                   int lane) const {
  return impl_->probeLanes(block, var).lane(lane);
}

LaneMask BatchSimulator::faultedLanes() const { return impl_->faultLanes_; }
const std::string& BatchSimulator::faultMessage() const {
  return impl_->faultMsg_;
}
std::uint64_t BatchSimulator::packetsDelivered() const {
  return impl_->packetsDelivered_;
}
std::uint64_t BatchSimulator::activations() const {
  return impl_->activations_;
}
const Network& BatchSimulator::network() const { return *impl_->net_; }

// --- script packing --------------------------------------------------------

BatchScript packStimuli(const Network& net,
                        std::span<const Stimulus> scripts) {
  if (scripts.size() > static_cast<std::size_t>(kLanes))
    throw std::invalid_argument("packStimuli: more than kLanes scripts");
  BatchScript out;
  out.laneCount = static_cast<int>(scripts.size());
  std::size_t maxSteps = 0;
  for (const Stimulus& s : scripts)
    maxSteps = std::max(maxSteps, s.steps().size());
  out.steps.resize(maxSteps);
  out.activeAtStep.resize(maxSteps, 0);
  // Resolve sensor names once: Network::findBlock is a linear scan, and
  // the loop below would otherwise run it per (lane, step).
  std::unordered_map<std::string_view, BlockId> sensorOf;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (net.isSensor(b)) sensorOf.emplace(net.block(b).name, b);
  for (std::size_t i = 0; i < maxSteps; ++i) {
    BatchStep& step = out.steps[i];
    std::map<BlockId, std::size_t> writeOf;  // sensor -> index in writes
    for (int lane = 0; lane < out.laneCount; ++lane) {
      const auto& steps = scripts[static_cast<std::size_t>(lane)].steps();
      if (i >= steps.size()) continue;
      out.activeAtStep[i] |= LaneMask{1} << lane;
      const StimulusStep& s = steps[i];
      if (s.kind == StimulusStep::Kind::kTick) {
        step.tickLanes |= LaneMask{1} << lane;
        continue;
      }
      const auto sensorIt = sensorOf.find(s.sensor);
      if (sensorIt == sensorOf.end())
        throw std::invalid_argument("packStimuli: no sensor named '" +
                                    s.sensor + "'");
      const BlockId id = sensorIt->second;
      const auto [it, inserted] = writeOf.emplace(id, step.writes.size());
      if (inserted) step.writes.push_back(BatchStep::SensorWrite{id, 0, {}});
      BatchStep::SensorWrite& w = step.writes[it->second];
      w.lanes |= LaneMask{1} << lane;
      w.values.setLane(lane, s.value);
    }
  }
  return out;
}

}  // namespace eblocks::sim
