#include "sim/stimulus.h"

#include <sstream>
#include <stdexcept>

#include "sim/equivalence.h"

namespace eblocks::sim {

Stimulus& Stimulus::set(std::string sensor, std::int64_t value) {
  StimulusStep s;
  s.kind = StimulusStep::Kind::kSetSensor;
  s.sensor = std::move(sensor);
  s.value = value;
  steps_.push_back(std::move(s));
  return *this;
}

Stimulus& Stimulus::press(const std::string& sensor) {
  set(sensor, 1);
  set(sensor, 0);
  return *this;
}

Stimulus& Stimulus::tick(int count) {
  for (int i = 0; i < count; ++i) steps_.push_back(StimulusStep{});
  return *this;
}

std::vector<std::int64_t> Stimulus::run(Simulator& simulator) const {
  const Network& net = simulator.network();
  std::vector<BlockId> outputs;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (net.isOutput(b)) outputs.push_back(b);
  std::vector<std::int64_t> observed;
  observed.reserve(steps_.size() * outputs.size());
  for (const StimulusStep& s : steps_) {
    if (s.kind == StimulusStep::Kind::kSetSensor) {
      simulator.setSensor(s.sensor, s.value);
      simulator.settle();
    } else {
      simulator.tick();
    }
    for (BlockId b : outputs) observed.push_back(simulator.outputValue(b));
  }
  return observed;
}

std::string Stimulus::toText() const {
  std::string out;
  for (const StimulusStep& s : steps_) {
    if (s.kind == StimulusStep::Kind::kSetSensor)
      out += "set " + s.sensor + " " + std::to_string(s.value) + "\n";
    else
      out += "tick\n";
  }
  return out;
}

Stimulus Stimulus::fromText(std::string_view text) {
  Stimulus st;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string word;
    if (!(words >> word) || word[0] == '#') continue;  // blank or comment
    if (word == "tick") {
      st.tick();
    } else if (word == "set") {
      std::string sensor;
      std::int64_t value = 0;
      if (!(words >> sensor >> value))
        throw std::invalid_argument("Stimulus::fromText: bad line: " + line);
      st.set(std::move(sensor), value);
    } else {
      throw std::invalid_argument("Stimulus::fromText: bad line: " + line);
    }
  }
  return st;
}

Stimulus randomStimulus(const Network& net, int events, std::uint32_t seed) {
  std::vector<std::string> sensors;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (net.isSensor(b)) sensors.push_back(net.block(b).name);
  std::mt19937 rng(seed);
  Stimulus st;
  if (sensors.empty()) {
    st.tick(events);
    return st;
  }
  std::uniform_int_distribution<std::size_t> pick(0, sensors.size() - 1);
  std::uniform_int_distribution<int> coin(0, 3);
  for (int i = 0; i < events; ++i) {
    if (coin(rng) == 0) {
      st.tick();
    } else {
      st.set(sensors[pick(rng)], coin(rng) < 2 ? 1 : 0);
    }
  }
  return st;
}

std::vector<Stimulus> randomStimulusCorpus(const Network& net, int scripts,
                                           int events, std::uint32_t seed) {
  std::vector<Stimulus> corpus;
  corpus.reserve(static_cast<std::size_t>(scripts > 0 ? scripts : 0));
  for (int i = 0; i < scripts; ++i)
    corpus.push_back(randomStimulus(net, events, fuzzRoundSeed(seed, i)));
  return corpus;
}

}  // namespace eblocks::sim
