// Bit-parallel batch simulation: kLanes (64) independent stimulus streams
// advance through one network in lockstep, one bit (or one int64) per lane
// per variable (core/lanes.h).
//
// The batch simulator mirrors the scalar sim/simulator.h event loop --
// same packet model, same per-instant drain-then-evaluate batching, same
// two-pass tick -- but every value is a LaneVector and the event queue is
// the *union* of the per-lane event sets: a packet is scheduled when an
// output changed in ANY lane and carries a snapshot of all lanes.  Two
// structural facts make the union loop lane-exact:
//
//   1. every input port has a single driver (Network::connect rejects
//      double-driving), so a delivered snapshot always overwrites a port
//      with per-lane values that are current for that port; and
//   2. re-activating a block whose inputs did not change (tick = 0) is a
//      no-op -- the same idempotence the scalar simulator's power-up wave
//      (reset()) and two-pass tick() already rely on.  Lanes for which an
//      activation is spurious therefore re-derive their current state.
//
// Divergent control flow (`if` arms taken by some lanes only) is executed
// SIMT-style under a lane mask; assignments merge masked.  Behavior
// programs are compiled once into slot-indexed form -- no name hashing on
// the hot path.  Behavior faults (division by zero) are recorded per lane
// in faultedLanes() instead of throwing: a faulted lane's values are
// unspecified from that point on and must be replayed through the scalar
// Simulator (sim/batch_equivalence.cpp does exactly that); other lanes
// are unaffected.
//
// Unlike the scalar simulator, construction requires programs to be
// *closed*: every name read must be an input/output port, `tick`, a
// sensor's `env`, or a variable declared or assigned somewhere in the
// program (the same closure rule codegen/c_emitter enforces).  The scalar
// simulator binds names dynamically on first write; all catalog and
// merged-program behaviors satisfy the static rule.  SimError is thrown
// otherwise -- callers fall back to the scalar path.
#ifndef EBLOCKS_SIM_BATCH_SIMULATOR_H_
#define EBLOCKS_SIM_BATCH_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/lanes.h"
#include "core/network.h"
#include "sim/stimulus.h"

namespace eblocks::sim {

struct BatchSimOptions {
  std::uint64_t hopLatency = 1;  ///< packet flight time per connection
  /// Per-lane event budget; one settle's budget is this value times
  /// kLanes, because a single batch packet can serve up to kLanes lanes.
  std::uint64_t maxEventsPerSettle = 1'000'000;
};

/// One lockstep step applied to all lanes at once: per-lane sensor writes
/// followed by a tick in the lanes of `tickLanes`.  A lane may do both
/// only if its script really interleaves them; packStimuli never does.
struct BatchStep {
  struct SensorWrite {
    BlockId sensor = kNoBlock;
    LaneMask lanes = 0;    ///< lanes performing this write
    LaneVector values;     ///< read only on lanes in `lanes`
  };
  std::vector<SensorWrite> writes;
  LaneMask tickLanes = 0;
};

/// Up to kLanes stimulus scripts packed into lockstep steps: lane i
/// executes scripts[i]; shorter scripts simply idle once exhausted
/// (activeAtStep masks the lanes still running at each step).
struct BatchScript {
  int laneCount = 0;
  std::vector<BatchStep> steps;
  std::vector<LaneMask> activeAtStep;  ///< per step: lanes still scripted
  LaneMask allLanes() const { return firstLanes(laneCount); }
};

/// Packs `scripts` (at most kLanes of them) for `net`.  Throws
/// std::invalid_argument on more than kLanes scripts or unknown sensors.
BatchScript packStimuli(const Network& net,
                        std::span<const Stimulus> scripts);

class BatchSimulator {
 public:
  /// Compiles every block's behavior into lane-parallel slot form.
  /// Throws SimError on unparsable or non-closed behaviors (see file
  /// comment).  The network must outlive the simulator.
  explicit BatchSimulator(const Network& net, BatchSimOptions opts = {});
  ~BatchSimulator();
  BatchSimulator(BatchSimulator&&) noexcept;
  BatchSimulator& operator=(BatchSimulator&&) noexcept;

  /// Resets all lanes and restricts simulation to `active`: re-initializes
  /// state, runs the power-up evaluation wave, and settles.  Inactive
  /// lanes carry unspecified values and are never reported.
  void reset(LaneMask active = kAllLanes);

  LaneMask activeLanes() const;

  /// Sets a sensor's environment value on the lanes of `lanes` and
  /// activates it (all lanes; spurious lanes are no-ops).  Does not
  /// settle.  Throws SimError on non-sensors, like the scalar simulator.
  void setSensor(BlockId sensor, LaneMask lanes, const LaneVector& values);
  void setSensor(const std::string& name, LaneMask lanes,
                 std::int64_t value);

  /// Processes pending packets until quiescence.  Throws SimError when
  /// the batch event budget is exceeded (some lane likely oscillates;
  /// replay lanes through the scalar simulator to attribute it).
  void settle();

  /// Timer tick on the lanes of `lanes`: the scalar two-pass tick with
  /// `tick` set per lane, then settle.
  void tick(LaneMask lanes);

  /// Applies one packed step: sensor writes, tick passes, settle.
  void apply(const BatchStep& step);

  /// Display value of an output block in one lane.
  std::int64_t outputValue(BlockId outputBlock, int lane) const;
  /// All lanes of an output block's display variable.
  const LaneVector& outputLanes(BlockId outputBlock) const;

  /// Reads any variable of any block (all lanes 0 if never bound).
  const LaneVector& probeLanes(BlockId block, const std::string& var) const;
  std::int64_t probe(BlockId block, const std::string& var, int lane) const;

  /// Lanes that hit a behavior fault (e.g. division by zero) since the
  /// last reset().  Their values are unspecified from the faulting
  /// instant onward; faultMessage() describes the first fault.
  LaneMask faultedLanes() const;
  const std::string& faultMessage() const;

  std::uint64_t packetsDelivered() const;
  std::uint64_t activations() const;

  const Network& network() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eblocks::sim

#endif  // EBLOCKS_SIM_BATCH_SIMULATOR_H_
