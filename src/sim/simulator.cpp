#include "sim/simulator.h"

#include <tuple>

#include "behavior/parser.h"

namespace eblocks::sim {

Simulator::Simulator(const Network& net, SimOptions opts)
    : net_(&net), opts_(opts) {
  const std::size_t n = net.blockCount();
  programs_.reserve(n);
  envs_.resize(n);
  outPortBase_.resize(n + 1, 0);
  for (BlockId b = 0; b < n; ++b) {
    const BlockType& t = *net.block(b).type;
    try {
      programs_.push_back(behavior::parse(t.behaviorSource()));
    } catch (const std::exception& e) {
      throw SimError("block '" + net.block(b).name + "' (" + t.name() +
                     "): " + e.what());
    }
    outPortBase_[b + 1] =
        outPortBase_[b] + static_cast<std::size_t>(t.outputCount());
  }
  lastEmitted_.assign(outPortBase_[n], 0);
  reset();
}

void Simulator::reset() {
  now_ = 0;
  seq_ = 0;
  packetsDelivered_ = 0;
  activations_ = 0;
  trace_.clear();
  while (!queue_.empty()) queue_.pop();
  for (std::int64_t& v : lastEmitted_) v = 0;
  for (BlockId b = 0; b < net_->blockCount(); ++b) {
    const BlockType& t = *net_->block(b).type;
    behavior::Environment env;
    // Bind ports and builtins to 0 before state init so initializers may
    // reference them.
    for (int p = 0; p < t.inputCount(); ++p) env.set(t.inputName(p), 0);
    for (int p = 0; p < t.outputCount(); ++p) env.set(t.outputName(p), 0);
    env.set("tick", 0);
    if (t.blockClass() == BlockClass::kSensor) env.set("env", 0);
    behavior::initializeState(programs_[b], env);
    envs_[b] = std::move(env);
  }
  // Power-up evaluation wave: evaluate every block once so constant
  // outputs (e.g. an inverter of a low input) propagate.
  for (BlockId b = 0; b < net_->blockCount(); ++b) activate(b, false);
  settle();
}

void Simulator::setSensor(BlockId sensor, std::int64_t value) {
  if (!net_->isSensor(sensor))
    throw SimError("setSensor: block '" + net_->block(sensor).name +
                   "' is not a sensor");
  envs_[sensor].set("env", value);
  activate(sensor, false);
}

void Simulator::setSensor(const std::string& name, std::int64_t value) {
  const auto id = net_->findBlock(name);
  if (!id) throw SimError("setSensor: no block named '" + name + "'");
  setSensor(*id, value);
}

void Simulator::settle() { processEventsUntilQuiet(); }

void Simulator::tick() {
  // Two-pass tick: every sequential block first processes the tick against
  // its pre-tick inputs (as in the physical network, where tick effects
  // only reach neighbors as later packets), then runs a cascade pass with
  // tick=0.  For pre-defined single blocks the second pass is an idempotent
  // no-op; for synthesized merged blocks it propagates intra-partition
  // cascades exactly like the original packet flow.
  for (BlockId b = 0; b < net_->blockCount(); ++b)
    if (net_->block(b).type->sequential()) activate(b, true);
  for (BlockId b = 0; b < net_->blockCount(); ++b)
    if (net_->block(b).type->sequential()) activate(b, false);
  settle();
}

std::int64_t Simulator::outputValue(BlockId outputBlock) const {
  if (!net_->isOutput(outputBlock))
    throw SimError("outputValue: block '" + net_->block(outputBlock).name +
                   "' is not an output block");
  return probe(outputBlock, "display");
}

std::int64_t Simulator::outputValue(const std::string& name) const {
  const auto id = net_->findBlock(name);
  if (!id) throw SimError("outputValue: no block named '" + name + "'");
  return outputValue(*id);
}

std::int64_t Simulator::probe(BlockId block, const std::string& var) const {
  const behavior::Environment& env = envs_.at(block);
  return env.has(var) ? env.get(var) : 0;
}

void Simulator::activate(BlockId b, bool isTick) {
  ++activations_;
  behavior::Environment& env = envs_[b];
  env.set("tick", isTick ? 1 : 0);
  const BlockType& t = *net_->block(b).type;
  const bool traceBlock =
      opts_.recordTrace && t.blockClass() == BlockClass::kOutput;
  const std::int64_t displayBefore =
      traceBlock && env.has("display") ? env.get("display") : 0;
  try {
    behavior::execute(programs_[b], env);
  } catch (const behavior::EvalError& e) {
    throw SimError("block '" + net_->block(b).name + "': " + e.what());
  }
  for (int p = 0; p < t.outputCount(); ++p) {
    const std::int64_t v = env.get(t.outputName(p));
    std::int64_t& last = lastEmitted_[outPortBase_[b] + static_cast<std::size_t>(p)];
    if (v != last) {
      last = v;
      scheduleFanout(b, p, v);
    }
  }
  if (traceBlock) {
    const std::int64_t displayAfter =
        env.has("display") ? env.get("display") : 0;
    if (displayAfter != displayBefore)
      trace_.push_back(TraceEntry{now_, b, displayAfter});
  }
  if (hook_) hook_(b, isTick);
}

void Simulator::scheduleFanout(BlockId b, int port, std::int64_t value) {
  for (const Connection& c : net_->fanoutOf(b, port))
    queue_.push(Event{now_ + opts_.hopLatency, seq_++, c.to, value});
}

void Simulator::processEventsUntilQuiet() {
  std::uint64_t budget = opts_.maxEventsPerSettle;
  std::vector<Event> batch;
  std::vector<BlockId> order;
  std::vector<char> inBatch(net_->blockCount(), 0);
  while (!queue_.empty()) {
    // Drain every packet that arrives at this instant, then evaluate each
    // destination block once -- the physical firmware's receive loop does
    // exactly this ("drain RX, then eval"), and it keeps a block from
    // being evaluated in an inconsistent intermediate state when one
    // source signal fans out to several of its input ports.
    const std::uint64_t t = queue_.top().time;
    now_ = t;
    batch.clear();
    order.clear();
    while (!queue_.empty() && queue_.top().time == t) {
      if (budget-- == 0)
        throw SimError("settle: exceeded event budget (" +
                       std::to_string(opts_.maxEventsPerSettle) +
                       "); network may oscillate");
      batch.push_back(queue_.top());
      queue_.pop();
    }
    for (const Event& ev : batch) {  // seq order: later packets win a port
      ++packetsDelivered_;
      const BlockType& type = *net_->block(ev.dst.block).type;
      envs_[ev.dst.block].set(type.inputName(ev.dst.port), ev.value);
      if (!inBatch[ev.dst.block]) {
        inBatch[ev.dst.block] = 1;
        order.push_back(ev.dst.block);
      }
    }
    for (BlockId b : order) {
      inBatch[b] = 0;
      activate(b, false);
    }
  }
}

}  // namespace eblocks::sim
