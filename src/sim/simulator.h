// Behavioral eBlock network simulator (Section 3.1).
//
// All communication between blocks is serial packets and globally
// asynchronous; blocks deal with human-scale events, so the simulator is
// "behaviorally correct and obeys general high-level timing" without
// modeling detailed electrical timing.  Model:
//
//   - Packets carry an integer value from an output port to an input port
//     with a per-hop latency (SimOptions::hopLatency).
//   - A block activates when a packet arrives; it re-evaluates its behavior
//     program and emits packets on outputs whose value changed.
//   - Timer ticks drive sequential blocks (delay, pulse, prolonger...).
//     Ticks are driven explicitly by the caller via tick(), which makes
//     runs deterministic and lets the equivalence checker advance two
//     networks in lockstep.
//   - Sensors are driven via setSensor(); probes read any block variable.
//
// The simulator accepts cyclic block graphs (synthesized networks may
// contain benign block-level cycles; see docs/pipeline.md) and guards against
// non-settling packet storms with SimOptions::maxEventsPerSettle.
#ifndef EBLOCKS_SIM_SIMULATOR_H_
#define EBLOCKS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "behavior/ast.h"
#include "behavior/interpreter.h"
#include "core/network.h"

namespace eblocks::sim {

struct SimOptions {
  std::uint64_t hopLatency = 1;  ///< packet flight time per connection
  std::uint64_t maxEventsPerSettle = 1'000'000;  ///< oscillation guard
  bool recordTrace = true;  ///< keep a trace of output-display changes
};

/// One observed change of an output block's display value.
struct TraceEntry {
  std::uint64_t time = 0;
  BlockId block = kNoBlock;
  std::int64_t value = 0;
  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// Thrown when settle() exceeds the event budget (packet storm /
/// oscillating network), or on behavior evaluation faults.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Simulator {
 public:
  /// Parses every block's behavior up front; throws on invalid behavior
  /// source.  The network must outlive the simulator.
  explicit Simulator(const Network& net, SimOptions opts = {});

  /// Resets all state: re-initializes state variables, sets sensor
  /// environments to 0, evaluates every block once, and settles.
  void reset();

  /// Sets a sensor's environment value and activates it.  Does not settle.
  void setSensor(BlockId sensor, std::int64_t value);
  void setSensor(const std::string& name, std::int64_t value);

  /// Processes pending packet events until quiescence.
  void settle();

  /// One timer tick: activates every sequential block with tick=1, then
  /// settles.
  void tick();

  /// Convenience: setSensor + settle.
  void apply(const std::string& sensorName, std::int64_t value) {
    setSensor(sensorName, value);
    settle();
  }

  /// Display value of an output block (its `display` variable).
  std::int64_t outputValue(BlockId outputBlock) const;
  std::int64_t outputValue(const std::string& name) const;

  /// Reads any variable of any block (0 if never bound).
  std::int64_t probe(BlockId block, const std::string& var) const;

  /// Called after every block activation (program already executed,
  /// packets scheduled) with the block id and whether the activation was a
  /// timer tick.  Probing the simulator from the hook is allowed.  Used to
  /// capture a block's activation sequence, e.g. to drive the generated-C
  /// test harness in lockstep (see tests/integration).
  using ActivationHook = std::function<void(BlockId, bool isTick)>;
  void setActivationHook(ActivationHook hook) { hook_ = std::move(hook); }

  std::uint64_t now() const { return now_; }
  const std::vector<TraceEntry>& trace() const { return trace_; }
  std::uint64_t packetsDelivered() const { return packetsDelivered_; }
  std::uint64_t activations() const { return activations_; }

  const Network& network() const { return *net_; }

 private:
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;  // FIFO order among same-time events
    Endpoint dst;       // destination input port
    std::int64_t value;
    bool operator>(const Event& o) const {
      return std::tie(time, seq) > std::tie(o.time, o.seq);
    }
  };

  void activate(BlockId b, bool isTick);
  void scheduleFanout(BlockId b, int port, std::int64_t value);
  void processEventsUntilQuiet();

  const Network* net_;
  SimOptions opts_;
  std::vector<behavior::Program> programs_;      // per block
  std::vector<behavior::Environment> envs_;      // per block
  std::vector<std::int64_t> lastEmitted_;        // per (block, port), flat
  std::vector<std::size_t> outPortBase_;         // block -> index into flat
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t packetsDelivered_ = 0;
  std::uint64_t activations_ = 0;
  std::vector<TraceEntry> trace_;
  ActivationHook hook_;
};

}  // namespace eblocks::sim

#endif  // EBLOCKS_SIM_SIMULATOR_H_
