// Batch equivalence checking: the verification-throughput layer.
//
// These are drop-in batch analogs of sim/equivalence.h: the same verdicts,
// computed ~kLanes scripts at a time through the bit-parallel
// BatchSimulator.  The contract, by construction, is *verdict identity*:
//
//   batchCheckEquivalence(ref, cand, scripts) ==
//       the first non-null result of checkEquivalence(ref, cand, s)
//       for s in scripts, in order (including thrown exceptions).
//
// The batch pass only *detects* which lanes diverge (or hit a behavior
// fault); the earliest diverging script is then replayed through the
// scalar Simulator, which produces today's exact Mismatch report -- field
// for field what a sequential scalar loop would have returned.  Networks
// the batch simulator cannot handle (non-closed behavior programs, event
// budget overflows) transparently fall back to the scalar loop.
#ifndef EBLOCKS_SIM_BATCH_EQUIVALENCE_H_
#define EBLOCKS_SIM_BATCH_EQUIVALENCE_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/batch_simulator.h"
#include "sim/equivalence.h"

namespace eblocks::sim {

/// Checks `candidate` against `reference` on every script, kLanes scripts
/// per batch pass.  Returns the first mismatch in script order, exactly as
/// a sequential loop of checkEquivalence calls would.  Throws
/// std::invalid_argument when sensor/output name sets differ.
std::optional<Mismatch> batchCheckEquivalence(const Network& reference,
                                              const Network& candidate,
                                              std::span<const Stimulus> scripts,
                                              SimOptions opts = {});

/// Batch analog of fuzzEquivalence: same seed derivation (fuzzRoundSeed),
/// same scripts, same verdict -- rounds are packed kLanes per pass.
std::optional<Mismatch> batchFuzzEquivalence(const Network& reference,
                                             const Network& candidate,
                                             int rounds, int eventsPerRound,
                                             std::uint32_t seed,
                                             SimOptions opts = {});

/// Like batchFuzzEquivalence, but returns the reproduction bundle
/// (round, derived seed, serialized script) on failure.
std::optional<FuzzFailure> batchFuzzEquivalenceDetailed(
    const Network& reference, const Network& candidate, int rounds,
    int eventsPerRound, std::uint32_t seed, SimOptions opts = {});

/// One (reference, candidate) pair of a verification corpus.
struct EquivalencePair {
  const Network* reference = nullptr;
  const Network* candidate = nullptr;
  std::string label;  ///< reported back in the verdict
};

/// Per-pair outcome; nullopt mismatch means the pair is equivalent on
/// every script.
struct PairVerdict {
  std::string label;
  std::optional<Mismatch> mismatch;
};

/// Checks a whole corpus of pairs against a shared script set; one
/// verdict per pair, in corpus order.
std::vector<PairVerdict> batchCheckCorpus(
    std::span<const EquivalencePair> pairs,
    std::span<const Stimulus> scripts, SimOptions opts = {});

}  // namespace eblocks::sim

#endif  // EBLOCKS_SIM_BATCH_EQUIVALENCE_H_
