#include "sim/equivalence.h"

#include <algorithm>
#include <stdexcept>

namespace eblocks::sim {

std::string Mismatch::describe() const {
  return "after step " + std::to_string(stepIndex) + ", output '" + output +
         "': reference=" + std::to_string(expected) +
         " candidate=" + std::to_string(actual);
}

namespace {

std::vector<std::string> sortedNames(const Network& net,
                                     bool (Network::*pred)(BlockId) const) {
  std::vector<std::string> names;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if ((net.*pred)(b)) names.push_back(net.block(b).name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

std::optional<Mismatch> checkEquivalence(const Network& reference,
                                         const Network& candidate,
                                         const Stimulus& script,
                                         SimOptions opts) {
  // Equivalence runs never read the trace; don't pay for recording it.
  opts.recordTrace = false;
  const auto refSensors = sortedNames(reference, &Network::isSensor);
  const auto candSensors = sortedNames(candidate, &Network::isSensor);
  if (refSensors != candSensors)
    throw std::invalid_argument(
        "checkEquivalence: sensor sets differ between networks");
  const auto refOutputs = sortedNames(reference, &Network::isOutput);
  const auto candOutputs = sortedNames(candidate, &Network::isOutput);
  if (refOutputs != candOutputs)
    throw std::invalid_argument(
        "checkEquivalence: output sets differ between networks");

  Simulator refSim(reference, opts);
  Simulator candSim(candidate, opts);
  const auto& steps = script.steps();
  for (int i = 0; i < static_cast<int>(steps.size()); ++i) {
    const StimulusStep& s = steps[static_cast<std::size_t>(i)];
    if (s.kind == StimulusStep::Kind::kSetSensor) {
      refSim.setSensor(s.sensor, s.value);
      refSim.settle();
      candSim.setSensor(s.sensor, s.value);
      candSim.settle();
    } else {
      refSim.tick();
      candSim.tick();
    }
    for (const std::string& out : refOutputs) {
      const std::int64_t e = refSim.outputValue(out);
      const std::int64_t a = candSim.outputValue(out);
      if (e != a) return Mismatch{i, out, e, a};
    }
  }
  return std::nullopt;
}

std::uint32_t fuzzRoundSeed(std::uint32_t seed, int round) {
  return seed + static_cast<std::uint32_t>(round) * 9973u;
}

std::optional<Mismatch> fuzzEquivalence(const Network& reference,
                                        const Network& candidate, int rounds,
                                        int eventsPerRound, std::uint32_t seed,
                                        SimOptions opts) {
  for (int r = 0; r < rounds; ++r) {
    const Stimulus script =
        randomStimulus(reference, eventsPerRound, fuzzRoundSeed(seed, r));
    if (auto m = checkEquivalence(reference, candidate, script, opts)) return m;
  }
  return std::nullopt;
}

std::string FuzzFailure::describe() const {
  return mismatch.describe() + " (fuzz round " + std::to_string(round) +
         ", stimulus seed " + std::to_string(roundSeed) + ")";
}

std::string FuzzFailure::artifact() const {
  std::string out;
  out += "# eblocks fuzz failure\n";
  out += "# round: " + std::to_string(round) + "\n";
  out += "# stimulus seed: " + std::to_string(roundSeed) + "\n";
  out += "# " + mismatch.describe() + "\n";
  out += script;
  return out;
}

std::optional<FuzzFailure> fuzzEquivalenceDetailed(const Network& reference,
                                                   const Network& candidate,
                                                   int rounds,
                                                   int eventsPerRound,
                                                   std::uint32_t seed,
                                                   SimOptions opts) {
  for (int r = 0; r < rounds; ++r) {
    const std::uint32_t rs = fuzzRoundSeed(seed, r);
    const Stimulus script = randomStimulus(reference, eventsPerRound, rs);
    if (auto m = checkEquivalence(reference, candidate, script, opts)) {
      FuzzFailure f;
      f.mismatch = *m;
      f.round = r;
      f.roundSeed = rs;
      f.script = script.toText();
      return f;
    }
  }
  return std::nullopt;
}

}  // namespace eblocks::sim
