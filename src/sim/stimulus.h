// Stimulus scripts: named sequences of sensor changes and timer ticks that
// can be replayed against any network exposing the same sensor names.  Used
// by the equivalence checker and the examples.
#ifndef EBLOCKS_SIM_STIMULUS_H_
#define EBLOCKS_SIM_STIMULUS_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace eblocks::sim {

/// One scripted action.
struct StimulusStep {
  enum class Kind { kSetSensor, kTick };
  Kind kind = Kind::kTick;
  std::string sensor;         // kSetSensor
  std::int64_t value = 0;     // kSetSensor
};

/// An ordered stimulus script.  Each step settles the network, so outputs
/// are stable at every step boundary (checkpoint).
class Stimulus {
 public:
  Stimulus& set(std::string sensor, std::int64_t value);
  Stimulus& press(const std::string& sensor);  ///< set 1 then 0
  Stimulus& tick(int count = 1);

  const std::vector<StimulusStep>& steps() const { return steps_; }

  /// Applies the full script; returns the output-block values observed at
  /// every step boundary, flattened in (step, output-block-id) order.
  std::vector<std::int64_t> run(Simulator& simulator) const;

  /// Serializes the script, one step per line: `set <sensor> <value>` or
  /// `tick`.  fromText round-trips it.
  std::string toText() const;

  /// Parses a serialized script.  Blank lines and `#` comment lines are
  /// ignored (so fuzz-failure artifacts parse as-is).  Throws
  /// std::invalid_argument on malformed lines.
  static Stimulus fromText(std::string_view text);

 private:
  std::vector<StimulusStep> steps_;
};

/// Builds a randomized stimulus for a network: `events` random sensor
/// flips/ticks, reproducible from `seed`.  Useful for equivalence fuzzing.
Stimulus randomStimulus(const Network& net, int events, std::uint32_t seed);

/// A corpus of `scripts` independent random stimuli, seeded with the fuzz
/// loop's per-round derivation (sim/equivalence.h fuzzRoundSeed) so script
/// i equals fuzz round i of a loop started with `seed`.
std::vector<Stimulus> randomStimulusCorpus(const Network& net, int scripts,
                                           int events, std::uint32_t seed);

}  // namespace eblocks::sim

#endif  // EBLOCKS_SIM_STIMULUS_H_
