#include "sim/batch_equivalence.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace eblocks::sim {

namespace {

BatchSimOptions toBatchOptions(const SimOptions& opts) {
  BatchSimOptions b;
  b.hopLatency = opts.hopLatency;
  b.maxEventsPerSettle = opts.maxEventsPerSettle;
  return b;
}

std::vector<std::string> sortedNames(const Network& net,
                                     bool (Network::*pred)(BlockId) const) {
  std::vector<std::string> names;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if ((net.*pred)(b)) names.push_back(net.block(b).name);
  std::sort(names.begin(), names.end());
  return names;
}

/// Output blocks of both networks paired up by instance name.
std::vector<std::pair<BlockId, BlockId>> pairedOutputs(
    const Network& reference, const Network& candidate,
    const std::vector<std::string>& names) {
  std::vector<std::pair<BlockId, BlockId>> out;
  out.reserve(names.size());
  for (const std::string& name : names)
    out.emplace_back(*reference.findBlock(name), *candidate.findBlock(name));
  return out;
}

/// The scalar loop the batch pass must be verdict-identical to.  Also the
/// fallback when the batch simulator rejects a network or overflows its
/// event budget.
std::optional<std::pair<std::size_t, Mismatch>> scalarSweep(
    const Network& reference, const Network& candidate,
    std::span<const Stimulus> scripts, const SimOptions& opts,
    std::size_t base) {
  for (std::size_t i = 0; i < scripts.size(); ++i)
    if (auto m = checkEquivalence(reference, candidate, scripts[i], opts))
      return std::make_pair(base + i, *m);
  return std::nullopt;
}

/// One batch pass over at most kLanes scripts.  Returns the global index
/// (base + lane) and Mismatch of the earliest diverging script.
std::optional<std::pair<std::size_t, Mismatch>> checkChunk(
    const Network& reference, const Network& candidate,
    std::span<const Stimulus> scripts,
    const std::vector<std::pair<BlockId, BlockId>>& outputs,
    const SimOptions& opts, std::size_t base) {
  LaneMask flagged = 0;
  try {
    BatchSimulator refSim(reference, toBatchOptions(opts));
    BatchSimulator candSim(candidate, toBatchOptions(opts));
    const BatchScript refScript = packStimuli(reference, scripts);
    const BatchScript candScript = packStimuli(candidate, scripts);
    refSim.reset(refScript.allLanes());
    candSim.reset(candScript.allLanes());
    for (std::size_t i = 0; i < refScript.steps.size(); ++i) {
      refSim.apply(refScript.steps[i]);
      candSim.apply(candScript.steps[i]);
      for (const auto& [refOut, candOut] : outputs)
        flagged |= laneDiff(refSim.outputLanes(refOut),
                            candSim.outputLanes(candOut)) &
                   refScript.activeAtStep[i];
    }
    // Faulted lanes carry unspecified values; resolve them by scalar
    // replay like any diverging lane (the replay re-raises the fault
    // exactly where a sequential scalar loop would have).
    flagged |= refSim.faultedLanes() | candSim.faultedLanes();
  } catch (const SimError&) {
    return scalarSweep(reference, candidate, scripts, opts, base);
  } catch (const std::invalid_argument&) {
    // e.g. a script naming a sensor neither network has: the scalar loop
    // reports this through Simulator::setSensor's SimError instead.
    return scalarSweep(reference, candidate, scripts, opts, base);
  }
  // Replay diverging scripts in script order: the first one the scalar
  // checker confirms is exactly what the sequential loop would return.
  for (std::size_t lane = 0; lane < scripts.size(); ++lane) {
    if (!((flagged >> lane) & 1u)) continue;
    if (auto m = checkEquivalence(reference, candidate, scripts[lane], opts))
      return std::make_pair(base + lane, *m);
    // A lane can be flagged without a scalar mismatch only through fault
    // quarantine; checkEquivalence then threw, so reaching here means the
    // scalar run is clean -- keep scanning.
  }
  return std::nullopt;
}

/// Chunked driver shared by every public entry point.
std::optional<std::pair<std::size_t, Mismatch>> checkScriptsIndexed(
    const Network& reference, const Network& candidate,
    std::span<const Stimulus> scripts, SimOptions opts) {
  const auto refSensors = sortedNames(reference, &Network::isSensor);
  const auto candSensors = sortedNames(candidate, &Network::isSensor);
  if (refSensors != candSensors)
    throw std::invalid_argument(
        "checkEquivalence: sensor sets differ between networks");
  const auto refOutputs = sortedNames(reference, &Network::isOutput);
  const auto candOutputs = sortedNames(candidate, &Network::isOutput);
  if (refOutputs != candOutputs)
    throw std::invalid_argument(
        "checkEquivalence: output sets differ between networks");
  const auto outputs = pairedOutputs(reference, candidate, refOutputs);

  opts.recordTrace = false;  // scalar replays pay no tracing either
  for (std::size_t offset = 0; offset < scripts.size();
       offset += static_cast<std::size_t>(kLanes)) {
    const std::size_t count = std::min(static_cast<std::size_t>(kLanes),
                                       scripts.size() - offset);
    if (auto m = checkChunk(reference, candidate,
                            scripts.subspan(offset, count), outputs, opts,
                            offset))
      return m;
  }
  return std::nullopt;
}

std::vector<Stimulus> fuzzScripts(const Network& reference, int rounds,
                                  int eventsPerRound, std::uint32_t seed) {
  std::vector<Stimulus> scripts;
  scripts.reserve(static_cast<std::size_t>(std::max(0, rounds)));
  for (int r = 0; r < rounds; ++r)
    scripts.push_back(
        randomStimulus(reference, eventsPerRound, fuzzRoundSeed(seed, r)));
  return scripts;
}

}  // namespace

std::optional<Mismatch> batchCheckEquivalence(const Network& reference,
                                              const Network& candidate,
                                              std::span<const Stimulus> scripts,
                                              SimOptions opts) {
  if (auto m = checkScriptsIndexed(reference, candidate, scripts, opts))
    return m->second;
  return std::nullopt;
}

std::optional<Mismatch> batchFuzzEquivalence(const Network& reference,
                                             const Network& candidate,
                                             int rounds, int eventsPerRound,
                                             std::uint32_t seed,
                                             SimOptions opts) {
  const auto scripts = fuzzScripts(reference, rounds, eventsPerRound, seed);
  if (auto m = checkScriptsIndexed(reference, candidate, scripts, opts))
    return m->second;
  return std::nullopt;
}

std::optional<FuzzFailure> batchFuzzEquivalenceDetailed(
    const Network& reference, const Network& candidate, int rounds,
    int eventsPerRound, std::uint32_t seed, SimOptions opts) {
  const auto scripts = fuzzScripts(reference, rounds, eventsPerRound, seed);
  const auto m = checkScriptsIndexed(reference, candidate, scripts, opts);
  if (!m) return std::nullopt;
  const int round = static_cast<int>(m->first);
  FuzzFailure f;
  f.mismatch = m->second;
  f.round = round;
  f.roundSeed = fuzzRoundSeed(seed, round);
  f.script = scripts[m->first].toText();
  return f;
}

std::vector<PairVerdict> batchCheckCorpus(
    std::span<const EquivalencePair> pairs,
    std::span<const Stimulus> scripts, SimOptions opts) {
  std::vector<PairVerdict> verdicts;
  verdicts.reserve(pairs.size());
  for (const EquivalencePair& p : pairs)
    verdicts.push_back(PairVerdict{
        p.label,
        batchCheckEquivalence(*p.reference, *p.candidate, scripts, opts)});
  return verdicts;
}

}  // namespace eblocks::sim
