// Behavioral equivalence checking between two networks.
//
// Synthesis must preserve observable behavior: for any stimulus, both the
// original (pre-defined blocks) and the synthesized (programmable blocks)
// network must show the same output-block values once packets settle.
// Output blocks are matched by instance name; sensors likewise.
#ifndef EBLOCKS_SIM_EQUIVALENCE_H_
#define EBLOCKS_SIM_EQUIVALENCE_H_

#include <optional>
#include <string>

#include "sim/stimulus.h"

namespace eblocks::sim {

/// A detected behavioral divergence.
struct Mismatch {
  int stepIndex = 0;          ///< stimulus step after which outputs differ
  std::string output;         ///< output block instance name
  std::int64_t expected = 0;  ///< value in the reference network
  std::int64_t actual = 0;    ///< value in the network under test
  std::string describe() const;
};

/// Runs `script` against both networks and compares all output blocks at
/// every step boundary.  Returns the first mismatch, or nullopt when the
/// networks agree everywhere.  Throws std::invalid_argument when the
/// networks' sensor/output names do not correspond.
std::optional<Mismatch> checkEquivalence(const Network& reference,
                                         const Network& candidate,
                                         const Stimulus& script,
                                         SimOptions opts = {});

/// Fuzz variant: `rounds` random scripts of `eventsPerRound` events.
std::optional<Mismatch> fuzzEquivalence(const Network& reference,
                                        const Network& candidate, int rounds,
                                        int eventsPerRound,
                                        std::uint32_t seed,
                                        SimOptions opts = {});

/// Derives the stimulus seed of fuzz round `round` from the loop seed.
/// Shared by the scalar and batch fuzz loops so both generate identical
/// scripts round-for-round.
std::uint32_t fuzzRoundSeed(std::uint32_t seed, int round);

/// A fuzz mismatch plus everything needed to reproduce it without the
/// original fuzz loop: the failing round, its derived stimulus seed, and
/// the serialized script (Stimulus::fromText round-trips it).
struct FuzzFailure {
  Mismatch mismatch;
  int round = 0;
  std::uint32_t roundSeed = 0;
  std::string script;

  std::string describe() const;
  /// Self-contained repro file: a commented header plus the script text.
  /// Feeding the whole artifact back to Stimulus::fromText replays it.
  std::string artifact() const;
};

/// Like fuzzEquivalence, but returns the reproduction bundle on failure.
std::optional<FuzzFailure> fuzzEquivalenceDetailed(const Network& reference,
                                                   const Network& candidate,
                                                   int rounds,
                                                   int eventsPerRound,
                                                   std::uint32_t seed,
                                                   SimOptions opts = {});

}  // namespace eblocks::sim

#endif  // EBLOCKS_SIM_EQUIVALENCE_H_
