// Behavioral equivalence checking between two networks.
//
// Synthesis must preserve observable behavior: for any stimulus, both the
// original (pre-defined blocks) and the synthesized (programmable blocks)
// network must show the same output-block values once packets settle.
// Output blocks are matched by instance name; sensors likewise.
#ifndef EBLOCKS_SIM_EQUIVALENCE_H_
#define EBLOCKS_SIM_EQUIVALENCE_H_

#include <optional>
#include <string>

#include "sim/stimulus.h"

namespace eblocks::sim {

/// A detected behavioral divergence.
struct Mismatch {
  int stepIndex = 0;          ///< stimulus step after which outputs differ
  std::string output;         ///< output block instance name
  std::int64_t expected = 0;  ///< value in the reference network
  std::int64_t actual = 0;    ///< value in the network under test
  std::string describe() const;
};

/// Runs `script` against both networks and compares all output blocks at
/// every step boundary.  Returns the first mismatch, or nullopt when the
/// networks agree everywhere.  Throws std::invalid_argument when the
/// networks' sensor/output names do not correspond.
std::optional<Mismatch> checkEquivalence(const Network& reference,
                                         const Network& candidate,
                                         const Stimulus& script,
                                         SimOptions opts = {});

/// Fuzz variant: `rounds` random scripts of `eventsPerRound` events.
std::optional<Mismatch> fuzzEquivalence(const Network& reference,
                                        const Network& candidate, int rounds,
                                        int eventsPerRound,
                                        std::uint32_t seed,
                                        SimOptions opts = {});

}  // namespace eblocks::sim

#endif  // EBLOCKS_SIM_EQUIVALENCE_H_
