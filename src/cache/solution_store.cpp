#include "cache/solution_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>
#include <utility>

#include "core/failpoint.h"
#include "io/binary.h"
#include "partition/verify.h"

namespace eblocks::cache {

namespace fs = std::filesystem;

namespace {

constexpr const char* kRecordSuffix = ".eblk";
// Temp files carry this marker so a crashed writer's leftovers are swept
// at the next open instead of shadowing real records.
constexpr const char* kTmpMarker = ".eblk.tmp";

/// The store's correctness contract is "only ever return what a fresh
/// run would have", so only completed runs of deterministic strategies
/// qualify.  lns is deterministic exactly when its round count is fixed
/// (rounds == 0 runs until the wall clock, which no two machines agree
/// on); exhaustive results are only reproducible when the search proved
/// them optimal.  Unknown (runtime-registered) strategies never qualify.
bool cacheable(std::string_view algorithm,
               const partition::EngineOptions& engine,
               const partition::PartitionRun& run) {
  if (run.timedOut) return false;
  if (algorithm == "lns") return engine.lnsRounds > 0;
  if (algorithm == "exhaustive") return run.optimal;
  // `ladder` is deliberately absent: how deep it descends depends on the
  // wall clock, so even a completed (optimal) ladder run is only
  // reproducible on an idle machine.  Ladder requests rely on the
  // server's idempotency table (server.h) for retry stability instead.
  return algorithm == "paredown" || algorithm == "aggregation" ||
         algorithm == "greedy" || algorithm == "fm";
}

/// Type equality by semantics, not identity: records decoded from disk
/// carry fresh BlockType objects, so pointer comparison alone would
/// never match.  Type *names* are compared last and least -- two
/// catalogs may register the same descriptor under different names.
bool sameType(const BlockType& a, const BlockType& b) {
  return &a == &b ||
         (a.blockClass() == b.blockClass() &&
          a.sequential() == b.sequential() &&
          a.programmable() == b.programmable() &&
          a.inputNames() == b.inputNames() &&
          a.outputNames() == b.outputNames() &&
          a.behaviorSource() == b.behaviorSource());
}

/// Positionally aligned: same shape, same semantics at every block id.
/// The stored partitioning then transfers without translation -- this is
/// the repeated-identical-request fast path (instance names may differ).
bool aligned(const Network& a, const Network& b) {
  if (a.blockCount() != b.blockCount()) return false;
  const auto ca = a.connections();
  const auto cb = b.connections();
  if (ca.size() != cb.size() ||
      !std::equal(ca.begin(), ca.end(), cb.begin()))
    return false;
  for (BlockId i = 0; i < a.blockCount(); ++i)
    if (!sameType(*a.block(i).type, *b.block(i).type)) return false;
  return true;
}

/// Carries a stored partitioning onto the requesting network: directly
/// when positionally aligned, otherwise through the canonical
/// isomorphism -- and in the latter case the translated result is
/// verified against the problem before it is trusted (isomorphismMap is
/// best-effort under true automorphisms; see canonical_hash.h).
/// nullopt = could not translate; the caller treats it as a miss.
std::optional<partition::Partitioning> translate(
    const Network& stored, const partition::Partitioning& p,
    const partition::PartitionProblem& problem, bool requireConvex) {
  const Network& net = problem.network();
  for (const BitSet& s : p.partitions)
    if (s.size() != stored.blockCount()) return std::nullopt;
  if (aligned(stored, net)) return p;

  const std::optional<std::vector<BlockId>> map =
      isomorphismMap(stored, net);
  if (!map) return std::nullopt;
  partition::Partitioning out;
  out.partitions.reserve(p.partitions.size());
  for (const BitSet& s : p.partitions) {
    BitSet t(net.blockCount());
    s.forEach([&](std::size_t b) { t.set((*map)[b]); });
    out.partitions.push_back(std::move(t));
  }
  partition::VerifyOptions vo;
  vo.requireConvex = requireConvex;
  if (!partition::verifyPartitioning(problem, out, vo).empty())
    return std::nullopt;
  return out;
}

// --- record codec ---------------------------------------------------------

struct RecordFields {
  Hash128 structure;
  std::uint64_t fp = 0;
  std::string algorithm;
  partition::ProgBlockSpec spec;
  bool requireConvex = false;
};

std::string encodeRecord(const RecordFields& f, const Network& net,
                         const partition::PartitionRun& run) {
  io::BinaryWriter w;
  w.u64(f.structure.hi);
  w.u64(f.structure.lo);
  w.u64(f.fp);
  w.str(f.algorithm);
  w.varint(static_cast<std::uint64_t>(f.spec.inputs));
  w.varint(static_cast<std::uint64_t>(f.spec.outputs));
  w.u8(static_cast<std::uint8_t>(f.spec.mode));
  w.u8(f.requireConvex ? 1 : 0);
  const std::string netFrame = io::writeNetworkBinary(net);
  w.varint(netFrame.size());
  w.bytes(netFrame);
  const std::string runFrame = io::writePartitionRunBinary(run);
  w.varint(runFrame.size());
  w.bytes(runFrame);
  return w.finish(io::SectionTag::kSolutionRecord);
}

/// The fixed prefix alone -- all the index needs, so opening a store
/// never decodes networks.
RecordFields decodePrefix(io::BinaryReader& r) {
  RecordFields f;
  f.structure.hi = r.u64();
  f.structure.lo = r.u64();
  f.fp = r.u64();
  f.algorithm = std::string(r.str());
  f.spec.inputs = static_cast<int>(r.varint());
  f.spec.outputs = static_cast<int>(r.varint());
  if (f.spec.inputs < 0 || f.spec.outputs < 0)
    throw io::BinaryError("solution record: port budget out of range");
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(CountingMode::kSignals))
    throw io::BinaryError("solution record: unknown counting mode");
  f.spec.mode = static_cast<CountingMode>(mode);
  f.requireConvex = r.u8() != 0;
  return f;
}

struct Record {
  RecordFields fields;
  Network net;
  partition::PartitionRun run;
};

Record decodeRecord(std::string_view blob) {
  namespace fp = core::failpoint;
  if (const fp::Hit hit = fp::check(fp::name::kCacheRecordDecode)) {
    if (hit.mode == fp::Mode::kError)
      throw io::BinaryError("failpoint: injected record decode fault");
  }
  io::BinaryReader r(blob, io::SectionTag::kSolutionRecord);
  Record rec;
  rec.fields = decodePrefix(r);
  const std::uint64_t netLen = r.varint();
  if (netLen > r.remaining())
    throw io::BinaryError("solution record: network blob truncated");
  rec.net = io::readNetworkBinary(r.bytes(static_cast<std::size_t>(netLen)));
  const std::uint64_t runLen = r.varint();
  if (runLen > r.remaining())
    throw io::BinaryError("solution record: run blob truncated");
  rec.run =
      io::readPartitionRunBinary(r.bytes(static_cast<std::size_t>(runLen)));
  if (!r.atEnd())
    throw io::BinaryError("solution record: trailing bytes");
  return rec;
}

std::string readFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string blob = in ? ss.str() : "";
  namespace fp = core::failpoint;
  if (const fp::Hit hit = fp::check(fp::name::kCacheRead)) {
    // A vanished file reads as empty; a truncated one as a prefix.  Both
    // fail frame validation downstream and degrade to a counted miss.
    if (hit.mode == fp::Mode::kError) return "";
    if (hit.mode == fp::Mode::kPartial && blob.size() > hit.arg)
      blob.resize(static_cast<std::size_t>(hit.arg));
  }
  return blob;
}

}  // namespace

SolutionStore::SolutionStore(StoreOptions options)
    : options_(std::move(options)) {
  if (!options_.directory.empty()) {
    std::error_code ec;
    fs::create_directories(options_.directory, ec);
    indexDirectory();
  }
}

std::string SolutionStore::pathFor(const std::string& keyHex) const {
  return (fs::path(options_.directory) / (keyHex + kRecordSuffix)).string();
}

std::string SolutionStore::loadBlob(const Entry& e) const {
  if (options_.directory.empty()) return e.blob;
  return readFile(pathFor(e.keyHex));
}

void SolutionStore::dropEntry(const std::string& keyHex, bool deleteFile) {
  const auto it = entries_.find(keyHex);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes;
  const auto bit = byStructure_.find(toHex(it->second.structure));
  if (bit != byStructure_.end()) {
    std::erase(bit->second, keyHex);
    if (bit->second.empty()) byStructure_.erase(bit);
  }
  entries_.erase(it);
  if (deleteFile && !options_.directory.empty()) {
    std::error_code ec;
    fs::remove(pathFor(keyHex), ec);
  }
}

void SolutionStore::evictToBudget() {
  while (bytes_ > options_.maxBytes && !entries_.empty()) {
    const Entry* lru = nullptr;
    for (const auto& [key, e] : entries_)
      if (!lru || e.lastUse < lru->lastUse) lru = &e;
    const std::string victim = lru->keyHex;
    dropEntry(victim, /*deleteFile=*/true);
    ++stats_.evictions;
  }
}

void SolutionStore::indexDirectory() {
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(options_.directory, ec)) {
    if (!de.is_regular_file()) continue;
    const fs::path p = de.path();
    const std::string fname = p.filename().string();
    if (fname.find(kTmpMarker) != std::string::npos) {
      std::error_code rec;
      fs::remove(p, rec);
      continue;
    }
    if (p.extension().string() != kRecordSuffix) continue;
    const std::string blob = readFile(p);
    try {
      io::BinaryReader r(blob, io::SectionTag::kSolutionRecord);
      const RecordFields f = decodePrefix(r);
      Entry e;
      e.keyHex = toHex(solutionKey(f.structure, f.fp));
      // A record renamed away from its content key can never be found
      // again by pathFor(); treat the mismatch like any other damage.
      if (e.keyHex + kRecordSuffix != fname)
        throw io::BinaryError("solution record: file name != content key");
      e.structure = f.structure;
      e.algorithm = f.algorithm;
      e.spec = f.spec;
      e.requireConvex = f.requireConvex;
      e.bytes = blob.size();
      e.lastUse = ++clock_;
      bytes_ += e.bytes;
      byStructure_[toHex(e.structure)].push_back(e.keyHex);
      entries_.emplace(e.keyHex, std::move(e));
    } catch (const io::BinaryError&) {
      ++stats_.corrupt;
      std::error_code rec;
      fs::remove(p, rec);
    }
  }
  evictToBudget();
}

std::optional<partition::PartitionRun> SolutionStore::lookup(
    const Network& net, std::string_view algorithm,
    const partition::ProgBlockSpec& spec,
    const partition::EngineOptions& engine) {
  const Hash128 s = structureHash(net);
  const std::uint64_t fp = optionsFingerprint(algorithm, spec, engine);
  const std::string keyHex = toHex(solutionKey(s, fp));

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(keyHex);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const std::string blob = loadBlob(it->second);
  Record rec;
  try {
    rec = decodeRecord(blob);
    // The file may have rotted since it was indexed; its content must
    // still derive the key it is filed under.
    if (toHex(solutionKey(rec.fields.structure, rec.fields.fp)) != keyHex)
      throw io::BinaryError("solution record: content key drifted");
  } catch (const io::BinaryError&) {
    ++stats_.corrupt;
    dropEntry(keyHex, /*deleteFile=*/true);
    ++stats_.misses;
    return std::nullopt;
  }
  const partition::PartitionProblem problem(net, spec);
  std::optional<partition::Partitioning> translated =
      translate(rec.net, rec.run.result, problem, engine.requireConvex);
  if (!translated) {
    ++stats_.misses;
    return std::nullopt;
  }
  it->second.lastUse = ++clock_;
  ++stats_.hits;
  partition::PartitionRun run = std::move(rec.run);
  run.result = std::move(*translated);
  return run;
}

std::optional<partition::Partitioning> SolutionStore::nearMiss(
    const Network& net, const partition::ProgBlockSpec& spec,
    const partition::EngineOptions& engine) {
  const Hash128 s = structureHash(net);

  std::lock_guard<std::mutex> lock(mu_);
  const auto bit = byStructure_.find(toHex(s));
  if (bit == byStructure_.end()) return std::nullopt;

  const partition::PartitionProblem problem(net, spec);
  std::optional<partition::Partitioning> best;
  int bestCost = std::numeric_limits<int>::max();
  // dropEntry() below mutates the byStructure_ vector; iterate a copy.
  const std::vector<std::string> candidates = bit->second;
  for (const std::string& keyHex : candidates) {
    const auto it = entries_.find(keyHex);
    if (it == entries_.end()) continue;
    const Entry& e = it->second;
    // Compatibility: a partitioning valid under a tighter port budget
    // stays valid under a looser one (same counting rules); convexity
    // must be at least as strict as the request demands.
    if (e.spec.mode != spec.mode) continue;
    if (e.spec.inputs > spec.inputs || e.spec.outputs > spec.outputs)
      continue;
    if (engine.requireConvex && !e.requireConvex) continue;

    const std::string blob = loadBlob(e);
    Record rec;
    try {
      rec = decodeRecord(blob);
    } catch (const io::BinaryError&) {
      ++stats_.corrupt;
      dropEntry(keyHex, /*deleteFile=*/true);
      continue;
    }
    std::optional<partition::Partitioning> translated =
        translate(rec.net, rec.run.result, problem, engine.requireConvex);
    if (!translated) continue;
    it->second.lastUse = ++clock_;
    const int cost = translated->totalAfter(problem.innerCount());
    if (cost < bestCost) {
      bestCost = cost;
      best = std::move(*translated);
    }
  }
  if (best) ++stats_.warmStarts;
  return best;
}

bool SolutionStore::writeRecordFile(const std::string& keyHex,
                                    const std::string& blob) {
  namespace fp = core::failpoint;
  const fs::path dir(options_.directory);
  const fs::path tmp =
      dir / (keyHex + kTmpMarker + std::to_string(++tmpCounter_));
  const fs::path final = dir / (keyHex + kRecordSuffix);

  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;

  // A torn write is the crash-consistency probe: some bytes land, the
  // writer believes it succeeded, and the damage must be caught by frame
  // validation at read time -- never served.
  std::size_t limit = blob.size();
  bool tearSilently = false;
  if (const fp::Hit hit = fp::check(fp::name::kCacheTmpTorn);
      hit.mode == fp::Mode::kPartial && hit.arg < limit) {
    limit = static_cast<std::size_t>(hit.arg);
    tearSilently = true;
  }

  bool ok = true;
  if (const fp::Hit hit = fp::check(fp::name::kCacheTmpWrite)) {
    // Simulated ENOSPC / short write: possibly land a prefix, then fail.
    if (hit.mode == fp::Mode::kPartial && hit.arg < limit)
      limit = static_cast<std::size_t>(hit.arg);
    if (hit.mode == fp::Mode::kError || hit.mode == fp::Mode::kPartial) {
      errno = hit.arg != 0 && hit.mode == fp::Mode::kError
                  ? static_cast<int>(hit.arg)
                  : ENOSPC;
      ok = false;
    }
  }
  std::size_t written = 0;
  while (ok && written < limit) {
    const ssize_t n =
        ::write(fd, blob.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;  // ENOSPC, EIO, ...: nothing retryable about these
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  // But for the simulated tear, a partial landing is a failed insert.
  if (ok && !tearSilently && written != blob.size()) ok = false;

  // fsync *before* rename: the rename must never publish a record whose
  // bytes are still only in the page cache -- a crash after rename but
  // before writeback would leave a named, torn record for the next open.
  if (ok) {
    if (const fp::Hit hit = fp::check(fp::name::kCacheFsync);
        hit.mode == fp::Mode::kError) {
      errno = hit.arg != 0 ? static_cast<int>(hit.arg) : EIO;
      ok = false;
    } else if (::fsync(fd) != 0) {
      ok = false;
    }
  }
  if (::close(fd) != 0) ok = false;

  if (ok) {
    if (const fp::Hit hit = fp::check(fp::name::kCacheRename);
        hit.mode == fp::Mode::kError) {
      errno = hit.arg != 0 ? static_cast<int>(hit.arg) : EIO;
      ok = false;
    } else if (::rename(tmp.c_str(), final.c_str()) != 0) {
      ok = false;
    }
  }
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Best-effort directory fsync so the rename itself is durable.  A
  // failure here is not a failed insert: the record is already valid and
  // visible, the entry is merely not yet crash-durable.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

void SolutionStore::insert(const Network& net, std::string_view algorithm,
                           const partition::ProgBlockSpec& spec,
                           const partition::EngineOptions& engine,
                           const partition::PartitionRun& run) {
  if (!cacheable(algorithm, engine, run)) return;
  RecordFields f;
  f.structure = structureHash(net);
  f.fp = optionsFingerprint(algorithm, spec, engine);
  f.algorithm = std::string(algorithm);
  f.spec = spec;
  f.requireConvex = engine.requireConvex;
  const std::string keyHex = toHex(solutionKey(f.structure, f.fp));
  const std::string blob = encodeRecord(f, net, run);
  if (blob.size() > options_.maxBytes) return;

  std::lock_guard<std::mutex> lock(mu_);
  const auto existing = entries_.find(keyHex);
  if (existing != entries_.end()) {
    // Bit-identity makes the stored record equivalent; just refresh LRU.
    existing->second.lastUse = ++clock_;
    return;
  }
  if (!options_.directory.empty() && !writeRecordFile(keyHex, blob)) {
    // Degraded-to-miss: the run is simply not cached.  The tmp file is
    // already unlinked, so the next indexDirectory() sweep has nothing
    // to misread.
    ++stats_.writeFailures;
    return;
  }
  Entry e;
  e.keyHex = keyHex;
  e.structure = f.structure;
  e.algorithm = f.algorithm;
  e.spec = spec;
  e.requireConvex = f.requireConvex;
  e.bytes = blob.size();
  if (options_.directory.empty()) e.blob = blob;
  e.lastUse = ++clock_;
  bytes_ += e.bytes;
  byStructure_[toHex(e.structure)].push_back(keyHex);
  entries_.emplace(keyHex, std::move(e));
  ++stats_.inserts;
  evictToBudget();
}

StoreStats SolutionStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SolutionStore::recordCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t SolutionStore::totalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace eblocks::cache
