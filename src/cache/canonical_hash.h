// Canonical content hashing for the solution cache.
//
// Production synthesis traffic is heavily repetitive, but rarely
// byte-identical: the same design arrives re-drawn, with blocks renamed,
// declared in a different order, or with internal behavior variables
// spelled differently.  A cache keyed on the netlist text would miss all
// of them.  This module keys on what the partitioner actually consumes:
//
//   structureHash(net)  --  a Weisfeiler-Lehman-style iterative color
//     refinement over the network's flattened (CSR-shaped) adjacency.
//     Every block starts from a fingerprint of its *type semantics*
//     (class, flags, port arity, and its behavior program re-printed
//     with ports and `var` state canonically renamed via behavior/
//     rename -- so internal signal names cannot distinguish two
//     functionally identical types), then repeatedly absorbs the sorted
//     multiset of (own port, neighbor color, neighbor port) over its in-
//     and out-arcs until the color partition stabilizes.  The final hash
//     aggregates the *sorted* color multiset, so it is invariant under
//     instance renaming, block declaration order, and connection
//     declaration order by construction: isomorphic designs collide, and
//     structurally distinct designs separate (up to WL's classical
//     limits, which the layered DAGs here do not approach; the property
//     tests in tests/cache/canonical_hash_test.cpp pin both directions).
//
//   optionsFingerprint(algorithm, spec, engine)  --  the *normalized*
//     option set: only knobs that can change the returned partitioning
//     participate (algorithm, port budget, counting mode, convexity;
//     plus the lns knobs and rng seed for `lns`).  Accelerator-only
//     knobs -- threads, scheduler, time limit, pruning, seeding -- are
//     bit-identity-preserving by the engine's contract, so they
//     normalize away and a request at 8 threads hits a record computed
//     at 1.
//
//   solutionKey = structureHash x optionsFingerprint  --  the exact-hit
//     cache key.  Records that share a structureHash but differ in
//     fingerprint are near-miss candidates (same design, different
//     constraints); cache/solution_store.h decides warm-start
//     compatibility.
//
// canonicalOrder()/isomorphismMap() extend the refinement with
// individualization so a *hit* on a renamed variant can be translated
// back: the stored partitioning references the stored network's block
// ids, and the map carries it onto the requesting network's ids.  The
// map is exact whenever refinement individualizes every block (all
// realistic designs here); for networks with true automorphisms the
// class-internal choice is arbitrary, so callers must verify the
// translated result and degrade to a miss -- never trust it blindly.
#ifndef EBLOCKS_CACHE_CANONICAL_HASH_H_
#define EBLOCKS_CACHE_CANONICAL_HASH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/network.h"
#include "partition/engine.h"
#include "partition/problem.h"

namespace eblocks::cache {

/// A 128-bit content hash (two independent 64-bit aggregations of the
/// same refinement, so accidental collisions need both halves to agree).
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend auto operator<=>(const Hash128&, const Hash128&) = default;
};

/// 32 lowercase hex digits, hi half first (stable across platforms --
/// used as the on-disk record file name).
std::string toHex(const Hash128& h);

/// The rename- and order-invariant structure hash (see header comment).
/// Deterministic: a pure function of the network's structure, pinned by
/// golden values in the property tests so accidental format drift fails.
Hash128 structureHash(const Network& net);

/// Normalized option fingerprint: hashes exactly the knobs that can
/// change the returned partitioning, never the accelerator-only ones.
std::uint64_t optionsFingerprint(std::string_view algorithm,
                                 const partition::ProgBlockSpec& spec,
                                 const partition::EngineOptions& engine);

/// The exact-hit cache key: structureHash folded with optionsFingerprint.
Hash128 solutionKey(const Network& net, std::string_view algorithm,
                    const partition::ProgBlockSpec& spec,
                    const partition::EngineOptions& engine);

/// Same fold from precomputed parts (what a store record carries in its
/// header, so re-indexing never re-runs the refinement).
Hash128 solutionKey(const Hash128& structure, std::uint64_t optionsFp);

/// Blocks in canonical order: WL refinement plus individualization until
/// every block's color is unique, then sorted by color.  Two isomorphic
/// networks yield orders that correspond position-by-position (exactly
/// when refinement alone separates all blocks; best-effort under true
/// automorphisms -- see header comment).
std::vector<BlockId> canonicalOrder(const Network& net);

/// Best-effort isomorphism: map[id in `from`] = corresponding id in
/// `to`, built by aligning the two canonical orders.  nullopt when the
/// networks cannot be isomorphic (different block/connection counts or
/// structure hashes).  Callers MUST verify whatever they translate
/// through it (partition::verifyPartitioning) and treat failure as a
/// cache miss.
std::optional<std::vector<BlockId>> isomorphismMap(const Network& from,
                                                   const Network& to);

}  // namespace eblocks::cache

#endif  // EBLOCKS_CACHE_CANONICAL_HASH_H_
