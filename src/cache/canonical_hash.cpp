#include "cache/canonical_hash.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "behavior/parser.h"
#include "behavior/printer.h"
#include "behavior/rename.h"

namespace eblocks::cache {

namespace {

// splitmix64: the standard 64-bit finalizer-style mixer.  Every hash in
// this file is built from it so the whole scheme is a pure function of
// the inputs -- no pointers, no iteration-order dependence -- which the
// pinned golden-hash tests rely on.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t seed, std::uint64_t v) {
  return mix(seed ^ mix(v));
}

std::uint64_t hashString(std::string_view s, std::uint64_t seed = 0) {
  std::uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return mix(h);
}

/// The type's behavior program with its interface and state canonically
/// renamed: input port i -> "$iN", output port j -> "$oN", and every
/// `var` declaration -> "$vK" in declaration order.  Builtin names
/// (tick, env, display) pass through untouched.  Two types that differ
/// only in how their signals are spelled print identically here -- the
/// "signal renaming" half of the hash's invariance.  Built on
/// behavior/rename, the same machinery codegen merges with.
std::string canonicalBehavior(const BlockType& t) {
  if (t.behaviorSource().empty()) return "";
  behavior::RenameMap renames;
  for (int i = 0; i < t.inputCount(); ++i)
    renames[t.inputName(i)] = "$i" + std::to_string(i);
  for (int i = 0; i < t.outputCount(); ++i)
    renames[t.outputName(i)] = "$o" + std::to_string(i);
  behavior::Program p = behavior::parse(t.behaviorSource());
  int k = 0;
  for (const std::string& v : behavior::declaredVars(p))
    if (!renames.count(v)) renames[v] = "$v" + std::to_string(k++);
  behavior::renameVars(p, renames);
  return behavior::toSource(p);
}

/// Initial WL color: the block's type *semantics*.  Instance names are
/// deliberately absent; type names too (a copy of `and2` registered
/// under another name is the same function).  Port identity is
/// positional, which the canonical behavior rename makes sound.
std::uint64_t typeColor(const BlockType& t) {
  std::uint64_t h = combine(0x7459ull, static_cast<std::uint64_t>(t.blockClass()));
  h = combine(h, static_cast<std::uint64_t>(t.inputCount()));
  h = combine(h, static_cast<std::uint64_t>(t.outputCount()));
  h = combine(h, t.sequential() ? 1 : 0);
  h = combine(h, t.programmable() ? 2 : 0);
  h = combine(h, hashString(canonicalBehavior(t)));
  return h;
}

std::vector<std::uint64_t> initialColors(const Network& net) {
  // Distinct BlockTypePtrs are fingerprinted once (canonicalBehavior
  // parses, which dominates otherwise).
  std::unordered_map<const BlockType*, std::uint64_t> memo;
  std::vector<std::uint64_t> colors(net.blockCount());
  for (BlockId b = 0; b < net.blockCount(); ++b) {
    const BlockType* t = net.block(b).type.get();
    const auto it = memo.find(t);
    colors[b] = it != memo.end() ? it->second
                                 : (memo[t] = typeColor(*t));
  }
  return colors;
}

std::size_t distinctCount(const std::vector<std::uint64_t>& colors) {
  return std::unordered_set<std::uint64_t>(colors.begin(), colors.end())
      .size();
}

/// One refinement round: every block absorbs the sorted multiset of
/// (direction, own port, neighbor color, neighbor port) over its arcs.
/// Sorting is what buys connection-declaration-order invariance.
std::vector<std::uint64_t> refineOnce(const Network& net,
                                      const std::vector<std::uint64_t>& colors) {
  std::vector<std::uint64_t> next(colors.size());
  std::vector<std::uint64_t> arcs;
  for (BlockId b = 0; b < net.blockCount(); ++b) {
    arcs.clear();
    for (const Connection& c : net.inputsOf(b)) {
      std::uint64_t h = combine(0x1Dull, c.to.port);
      h = combine(h, colors[c.from.block]);
      h = combine(h, c.from.port);
      arcs.push_back(h);
    }
    for (const Connection& c : net.outputsOf(b)) {
      std::uint64_t h = combine(0x07ull, c.from.port);
      h = combine(h, colors[c.to.block]);
      h = combine(h, c.to.port);
      arcs.push_back(h);
    }
    std::sort(arcs.begin(), arcs.end());
    std::uint64_t h = combine(0xC01ull, colors[b]);
    for (const std::uint64_t a : arcs) h = combine(h, a);
    next[b] = h;
  }
  return next;
}

/// Refine to the fixpoint: stop when a round no longer splits any color
/// class.  At most blockCount productive rounds exist.
std::vector<std::uint64_t> refineToFixpoint(const Network& net,
                                            std::vector<std::uint64_t> colors) {
  std::size_t distinct = distinctCount(colors);
  for (std::size_t round = 0; round <= net.blockCount(); ++round) {
    std::vector<std::uint64_t> next = refineOnce(net, colors);
    const std::size_t nextDistinct = distinctCount(next);
    colors = std::move(next);
    if (nextDistinct == distinct) break;
    distinct = nextDistinct;
  }
  return colors;
}

}  // namespace

std::string toHex(const Hash128& h) {
  static const char* digits = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? h.hi : h.lo;
    const int shift = 56 - 8 * (i % 8);
    const auto byte = static_cast<std::uint8_t>((word >> shift) & 0xff);
    s[2 * static_cast<std::size_t>(i)] = digits[byte >> 4];
    s[2 * static_cast<std::size_t>(i) + 1] = digits[byte & 0xf];
  }
  return s;
}

Hash128 structureHash(const Network& net) {
  std::vector<std::uint64_t> colors =
      refineToFixpoint(net, initialColors(net));
  // The sorted multiset of stable colors is the canonical form: block
  // ids (and with them declaration order and instance names) vanish.
  std::sort(colors.begin(), colors.end());
  Hash128 h;
  h.hi = combine(0x5EEDull, net.blockCount());
  h.lo = combine(0xFACEull, net.connections().size());
  for (const std::uint64_t c : colors) {
    h.hi = combine(h.hi, c);
    h.lo = combine(h.lo, mix(c ^ 0xA5A5A5A5A5A5A5A5ull));
  }
  return h;
}

std::uint64_t optionsFingerprint(std::string_view algorithm,
                                 const partition::ProgBlockSpec& spec,
                                 const partition::EngineOptions& engine) {
  std::uint64_t h = hashString(algorithm, 0x0075ull);
  h = combine(h, static_cast<std::uint64_t>(spec.inputs));
  h = combine(h, static_cast<std::uint64_t>(spec.outputs));
  h = combine(h, static_cast<std::uint64_t>(spec.mode));
  h = combine(h, engine.requireConvex ? 1 : 0);
  // Only `lns` consults its knobs and rng seed; for every other
  // registered strategy they are inert, and folding them in would
  // fragment the key space for no behavioral difference.
  if (algorithm == "lns") {
    h = combine(h, static_cast<std::uint64_t>(engine.lnsPocket));
    h = combine(h, static_cast<std::uint64_t>(engine.lnsRounds));
    h = combine(h, engine.lnsRepairNodes);
    h = combine(h, engine.rngSeed);
  }
  return h;
}

Hash128 solutionKey(const Network& net, std::string_view algorithm,
                    const partition::ProgBlockSpec& spec,
                    const partition::EngineOptions& engine) {
  return solutionKey(structureHash(net),
                     optionsFingerprint(algorithm, spec, engine));
}

Hash128 solutionKey(const Hash128& structure, std::uint64_t optionsFp) {
  return Hash128{combine(structure.hi, optionsFp),
                 combine(structure.lo, mix(optionsFp))};
}

std::vector<BlockId> canonicalOrder(const Network& net) {
  std::vector<std::uint64_t> colors =
      refineToFixpoint(net, initialColors(net));

  // Individualization: while any color class has several members, give
  // one member of the smallest ambiguous color a fresh color and
  // re-refine.  Picking the lowest block id is arbitrary -- under a true
  // automorphism any member is equivalent, and when it is NOT a true
  // automorphism (WL-equivalent but not interchangeable) the resulting
  // cross-network map can be wrong, which is why isomorphismMap's
  // callers verify.  Each round splits at least one class, so this
  // terminates in < blockCount rounds.
  for (std::size_t round = 0; round < net.blockCount(); ++round) {
    std::unordered_map<std::uint64_t, std::uint32_t> classSize;
    for (const std::uint64_t c : colors) ++classSize[c];
    std::uint64_t target = 0;
    bool found = false;
    for (const auto& [color, n] : classSize)
      if (n > 1 && (!found || color < target)) {
        target = color;
        found = true;
      }
    if (!found) break;
    for (BlockId b = 0; b < net.blockCount(); ++b)
      if (colors[b] == target) {
        colors[b] = combine(0x1D1Dull, colors[b]);
        break;
      }
    colors = refineToFixpoint(net, std::move(colors));
  }

  std::vector<BlockId> order(net.blockCount());
  for (BlockId b = 0; b < net.blockCount(); ++b) order[b] = b;
  std::sort(order.begin(), order.end(), [&](BlockId a, BlockId b) {
    return colors[a] != colors[b] ? colors[a] < colors[b] : a < b;
  });
  return order;
}

std::optional<std::vector<BlockId>> isomorphismMap(const Network& from,
                                                   const Network& to) {
  if (from.blockCount() != to.blockCount() ||
      from.connections().size() != to.connections().size())
    return std::nullopt;
  if (structureHash(from) != structureHash(to)) return std::nullopt;
  const std::vector<BlockId> fromOrder = canonicalOrder(from);
  const std::vector<BlockId> toOrder = canonicalOrder(to);
  std::vector<BlockId> map(from.blockCount(), kNoBlock);
  for (std::size_t i = 0; i < fromOrder.size(); ++i)
    map[fromOrder[i]] = toOrder[i];
  return map;
}

}  // namespace eblocks::cache
