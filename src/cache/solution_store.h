// The persistent, content-addressed solution cache.
//
// Repeated synthesis traffic becomes a lookup: every completed,
// deterministic partitioning run is stored under its canonical key
// (cache/canonical_hash.h), so a request for the same design -- or an
// isomorphic/renamed variant of it -- returns the stored PartitionRun
// instead of re-running the search, and a *near miss* (same structure,
// looser port budget) contributes its solution as a warm-start incumbent
// that the exact search uses as a pure pruning accelerator
// (EngineOptions::initialIncumbent -- bit-identical results, fewer
// explored nodes).  synth::synthesize() drives both paths through
// SynthOptions::cache; the shell's `cache` command manages a store
// interactively.
//
// Store layout: one io/binary.h frame per record (SectionTag::
// kSolutionRecord) in a flat directory, named `<solution-key-hex>.eblk`.
// Each record embeds the stored network (so a hit on a renamed variant
// can be translated through the canonical isomorphism and *verified*
// before it is trusted), the full PartitionRun, and the spec/options
// needed for near-miss compatibility checks.  An in-memory index built
// by scanning the directory at construction serves lookups; writes go
// through a temp file plus atomic rename, so concurrent readers (and
// crashed writers) never observe a half-written record.  Records whose
// frames fail to validate -- truncation, bit rot, version skew -- are
// counted, dropped, and treated as misses, never trusted and never
// fatal.  A byte-budget LRU cap (StoreOptions::maxBytes) bounds the
// directory; least-recently-used records are deleted first.
//
// Every public method is thread-safe (one internal mutex; the tests
// hammer a single store from 8 threads under TSan).  An empty directory
// string selects a purely in-memory store -- same semantics, nothing
// persisted -- which is what `cache on` in the shell gives you.
//
// What is cacheable: completed runs of the built-in deterministic
// strategies (paredown, aggregation, exhaustive when optimal, greedy,
// fm, and lns with a fixed round count).  Timed-out runs, lns driven by
// the wall clock, and unknown custom strategies are never stored -- a
// cache must only ever return what a fresh run would have.
#ifndef EBLOCKS_CACHE_SOLUTION_STORE_H_
#define EBLOCKS_CACHE_SOLUTION_STORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/canonical_hash.h"
#include "core/network.h"
#include "partition/engine.h"
#include "partition/problem.h"
#include "partition/result.h"

namespace eblocks::cache {

struct StoreOptions {
  /// Record directory; created if missing.  "" = in-memory only.
  std::string directory;
  /// Byte budget across all records; least-recently-used records are
  /// evicted (and their files deleted) to stay under it.
  std::uint64_t maxBytes = 256ull << 20;
};

struct StoreStats {
  std::uint64_t hits = 0;        ///< exact-key lookups served
  std::uint64_t misses = 0;      ///< exact-key lookups not served
  std::uint64_t warmStarts = 0;  ///< near-miss incumbents handed out
  std::uint64_t inserts = 0;     ///< records stored
  std::uint64_t evictions = 0;   ///< records removed by the LRU cap
  std::uint64_t corrupt = 0;     ///< records dropped as unreadable
  /// Inserts abandoned because the disk write failed (ENOSPC, short
  /// write, fsync or rename failure).  The tmp file is deleted and the
  /// run is simply not cached -- a degraded-to-miss, never an error the
  /// caller sees.
  std::uint64_t writeFailures = 0;
};

class SolutionStore {
 public:
  explicit SolutionStore(StoreOptions options);

  /// Exact hit: the stored run for this (structure, options) key,
  /// translated onto `net`'s block ids when the record was stored for a
  /// renamed/reordered variant (and verified after translation -- an
  /// untranslatable record is a miss).  nullopt = miss.
  std::optional<partition::PartitionRun> lookup(
      const Network& net, std::string_view algorithm,
      const partition::ProgBlockSpec& spec,
      const partition::EngineOptions& engine);

  /// Near miss: the best stored solution for the same structure under
  /// compatible-but-different constraints (counting mode equal, stored
  /// port budget <= requested, convexity at least as strict), translated
  /// onto `net` and verified against the *requested* constraints.
  /// Suitable as EngineOptions::initialIncumbent.  nullopt = nothing
  /// compatible.
  std::optional<partition::Partitioning> nearMiss(
      const Network& net, const partition::ProgBlockSpec& spec,
      const partition::EngineOptions& engine);

  /// Stores a completed run if it is cacheable (see header comment);
  /// silently a no-op otherwise.
  void insert(const Network& net, std::string_view algorithm,
              const partition::ProgBlockSpec& spec,
              const partition::EngineOptions& engine,
              const partition::PartitionRun& run);

  StoreStats stats() const;
  std::size_t recordCount() const;
  std::uint64_t totalBytes() const;
  const std::string& directory() const { return options_.directory; }

 private:
  struct Entry {
    std::string keyHex;           ///< file stem and index key
    Hash128 structure;            ///< for near-miss grouping
    std::string algorithm;
    partition::ProgBlockSpec spec;
    bool requireConvex = false;
    std::uint64_t bytes = 0;
    std::string blob;             ///< in-memory stores only
    std::uint64_t lastUse = 0;    ///< LRU clock value
  };

  std::string pathFor(const std::string& keyHex) const;
  /// Reads and validates a record blob; empty on failure (caller drops).
  std::string loadBlob(const Entry& e) const;
  /// Durable atomic write: tmp file + fsync + rename.  False on any IO
  /// failure (the tmp file is unlinked; caller counts a writeFailure).
  bool writeRecordFile(const std::string& keyHex, const std::string& blob);
  void dropEntry(const std::string& keyHex, bool deleteFile);
  void evictToBudget();
  void indexDirectory();

  StoreOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;          // keyHex -> record
  std::map<std::string, std::vector<std::string>> byStructure_;
  std::uint64_t bytes_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t tmpCounter_ = 0;
  StoreStats stats_;
};

}  // namespace eblocks::cache

#endif  // EBLOCKS_CACHE_SOLUTION_STORE_H_
