#include "behavior/rename.h"

namespace eblocks::behavior {

void renameVars(Expr& e, const RenameMap& renames) {
  if (e.kind == ExprKind::kVarRef) {
    const auto it = renames.find(e.name);
    if (it != renames.end()) e.name = it->second;
  }
  if (e.lhs) renameVars(*e.lhs, renames);
  if (e.rhs) renameVars(*e.rhs, renames);
}

void renameVars(Stmt& s, const RenameMap& renames) {
  if (s.kind == StmtKind::kVarDecl || s.kind == StmtKind::kAssign) {
    const auto it = renames.find(s.name);
    if (it != renames.end()) s.name = it->second;
  }
  if (s.expr) renameVars(*s.expr, renames);
  for (StmtPtr& t : s.thenBody) renameVars(*t, renames);
  for (StmtPtr& t : s.elseBody) renameVars(*t, renames);
}

void renameVars(Program& p, const RenameMap& renames) {
  for (StmtPtr& s : p.statements) renameVars(*s, renames);
}

}  // namespace eblocks::behavior
