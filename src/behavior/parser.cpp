#include "behavior/parser.h"

#include <utility>

#include "behavior/lexer.h"

namespace eblocks::behavior {

ParseError::ParseError(const std::string& what, int line, int column)
    : std::runtime_error("parse error at " + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + what),
      line_(line),
      column_(column) {}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parseProgram() {
    Program p;
    while (!at(TokenKind::kEnd)) p.statements.push_back(parseStmt(true));
    return p;
  }

  ExprPtr parseSingleExpression() {
    ExprPtr e = parseExpr();
    expect(TokenKind::kEnd, "end of expression");
    return e;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  bool at(TokenKind k) const { return cur().kind == k; }

  Token take() { return tokens_[pos_++]; }

  Token expect(TokenKind k, const char* what) {
    if (!at(k))
      throw ParseError(std::string("expected ") + what + ", found " +
                           toString(cur().kind),
                       cur().line, cur().column);
    return take();
  }

  bool accept(TokenKind k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }

  StmtPtr parseStmt(bool allowDecl) {
    if (at(TokenKind::kKwVar)) {
      if (!allowDecl)
        throw ParseError(
            "'var' declarations are only allowed at the top level "
            "(state initialization has reset semantics)",
            cur().line, cur().column);
      take();
      Token name = expect(TokenKind::kIdent, "variable name");
      expect(TokenKind::kAssign, "'=' after variable name");
      ExprPtr init = parseExpr();
      expect(TokenKind::kSemicolon, "';' after declaration");
      return makeVarDecl(name.text, std::move(init));
    }
    if (at(TokenKind::kKwIf)) return parseIf();
    if (at(TokenKind::kIdent)) {
      Token name = take();
      expect(TokenKind::kAssign, "'=' in assignment");
      ExprPtr rhs = parseExpr();
      expect(TokenKind::kSemicolon, "';' after assignment");
      return makeAssign(name.text, std::move(rhs));
    }
    throw ParseError("expected statement, found " +
                         std::string(toString(cur().kind)),
                     cur().line, cur().column);
  }

  StmtPtr parseIf() {
    expect(TokenKind::kKwIf, "'if'");
    expect(TokenKind::kLParen, "'(' after 'if'");
    ExprPtr cond = parseExpr();
    expect(TokenKind::kRParen, "')' after condition");
    std::vector<StmtPtr> thenBody = parseBlock();
    std::vector<StmtPtr> elseBody;
    if (accept(TokenKind::kKwElse)) {
      if (at(TokenKind::kKwIf)) {
        elseBody.push_back(parseIf());  // else-if chain
      } else {
        elseBody = parseBlock();
      }
    }
    return makeIf(std::move(cond), std::move(thenBody), std::move(elseBody));
  }

  std::vector<StmtPtr> parseBlock() {
    expect(TokenKind::kLBrace, "'{'");
    std::vector<StmtPtr> body;
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kEnd))
        throw ParseError("unterminated block", cur().line, cur().column);
      body.push_back(parseStmt(false));
    }
    take();  // consume '}'
    return body;
  }

  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr lhs = parseAnd();
    while (accept(TokenKind::kOrOr))
      lhs = makeBinary(BinaryOp::kOr, std::move(lhs), parseAnd());
    return lhs;
  }

  ExprPtr parseAnd() {
    ExprPtr lhs = parseEquality();
    while (accept(TokenKind::kAndAnd))
      lhs = makeBinary(BinaryOp::kAnd, std::move(lhs), parseEquality());
    return lhs;
  }

  ExprPtr parseEquality() {
    ExprPtr lhs = parseRel();
    for (;;) {
      if (accept(TokenKind::kEq))
        lhs = makeBinary(BinaryOp::kEq, std::move(lhs), parseRel());
      else if (accept(TokenKind::kNe))
        lhs = makeBinary(BinaryOp::kNe, std::move(lhs), parseRel());
      else
        return lhs;
    }
  }

  ExprPtr parseRel() {
    ExprPtr lhs = parseAdd();
    for (;;) {
      if (accept(TokenKind::kLt))
        lhs = makeBinary(BinaryOp::kLt, std::move(lhs), parseAdd());
      else if (accept(TokenKind::kLe))
        lhs = makeBinary(BinaryOp::kLe, std::move(lhs), parseAdd());
      else if (accept(TokenKind::kGt))
        lhs = makeBinary(BinaryOp::kGt, std::move(lhs), parseAdd());
      else if (accept(TokenKind::kGe))
        lhs = makeBinary(BinaryOp::kGe, std::move(lhs), parseAdd());
      else
        return lhs;
    }
  }

  ExprPtr parseAdd() {
    ExprPtr lhs = parseMul();
    for (;;) {
      if (accept(TokenKind::kPlus))
        lhs = makeBinary(BinaryOp::kAdd, std::move(lhs), parseMul());
      else if (accept(TokenKind::kMinus))
        lhs = makeBinary(BinaryOp::kSub, std::move(lhs), parseMul());
      else
        return lhs;
    }
  }

  ExprPtr parseMul() {
    ExprPtr lhs = parseUnary();
    for (;;) {
      if (accept(TokenKind::kStar))
        lhs = makeBinary(BinaryOp::kMul, std::move(lhs), parseUnary());
      else if (accept(TokenKind::kSlash))
        lhs = makeBinary(BinaryOp::kDiv, std::move(lhs), parseUnary());
      else if (accept(TokenKind::kPercent))
        lhs = makeBinary(BinaryOp::kMod, std::move(lhs), parseUnary());
      else
        return lhs;
    }
  }

  ExprPtr parseUnary() {
    if (accept(TokenKind::kBang))
      return makeUnary(UnaryOp::kNot, parseUnary());
    if (accept(TokenKind::kMinus))
      return makeUnary(UnaryOp::kNeg, parseUnary());
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    if (at(TokenKind::kIntLit)) return makeIntLit(take().intValue);
    if (accept(TokenKind::kKwTrue)) return makeIntLit(1);
    if (accept(TokenKind::kKwFalse)) return makeIntLit(0);
    if (at(TokenKind::kIdent)) return makeVarRef(take().text);
    if (accept(TokenKind::kLParen)) {
      ExprPtr e = parseExpr();
      expect(TokenKind::kRParen, "')'");
      return e;
    }
    throw ParseError("expected expression, found " +
                         std::string(toString(cur().kind)),
                     cur().line, cur().column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) {
  return Parser(lex(source)).parseProgram();
}

ExprPtr parseExpression(std::string_view source) {
  return Parser(lex(source)).parseSingleExpression();
}

}  // namespace eblocks::behavior
