// Variable renaming over behavior ASTs.
//
// Code generation merges many block programs into one; "in the event that
// two or more blocks share variable names in their internal behavior code,
// the conflict is resolved through variable renaming" (Section 3.3).  The
// same machinery rewires a block's port names to the merged program's
// internal wire variables.
#ifndef EBLOCKS_BEHAVIOR_RENAME_H_
#define EBLOCKS_BEHAVIOR_RENAME_H_

#include <string>
#include <unordered_map>

#include "behavior/ast.h"

namespace eblocks::behavior {

using RenameMap = std::unordered_map<std::string, std::string>;

/// Rewrites every variable reference, assignment target, and declaration
/// whose name appears in `renames`, in place.
void renameVars(Program& p, const RenameMap& renames);
void renameVars(Stmt& s, const RenameMap& renames);
void renameVars(Expr& e, const RenameMap& renames);

}  // namespace eblocks::behavior

#endif  // EBLOCKS_BEHAVIOR_RENAME_H_
