#include "behavior/interpreter.h"

namespace eblocks::behavior {

std::int64_t Environment::get(const std::string& name) const {
  const auto it = vars_.find(name);
  if (it == vars_.end()) throw EvalError("unbound variable: " + name);
  return it->second;
}

void Environment::set(const std::string& name, std::int64_t value) {
  vars_[name] = value;
}

std::int64_t evaluate(const Expr& e, const Environment& env) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return e.intValue;
    case ExprKind::kVarRef:
      return env.get(e.name);
    case ExprKind::kUnary: {
      const std::int64_t v = evaluate(*e.lhs, env);
      return e.uop == UnaryOp::kNot ? (v == 0 ? 1 : 0) : -v;
    }
    case ExprKind::kBinary: {
      // Short-circuit for logical operators.
      if (e.bop == BinaryOp::kAnd) {
        if (evaluate(*e.lhs, env) == 0) return 0;
        return evaluate(*e.rhs, env) != 0 ? 1 : 0;
      }
      if (e.bop == BinaryOp::kOr) {
        if (evaluate(*e.lhs, env) != 0) return 1;
        return evaluate(*e.rhs, env) != 0 ? 1 : 0;
      }
      const std::int64_t a = evaluate(*e.lhs, env);
      const std::int64_t b = evaluate(*e.rhs, env);
      switch (e.bop) {
        case BinaryOp::kAdd: return a + b;
        case BinaryOp::kSub: return a - b;
        case BinaryOp::kMul: return a * b;
        case BinaryOp::kDiv:
          if (b == 0) throw EvalError("division by zero");
          return a / b;
        case BinaryOp::kMod:
          if (b == 0) throw EvalError("modulo by zero");
          return a % b;
        case BinaryOp::kEq: return a == b;
        case BinaryOp::kNe: return a != b;
        case BinaryOp::kLt: return a < b;
        case BinaryOp::kLe: return a <= b;
        case BinaryOp::kGt: return a > b;
        case BinaryOp::kGe: return a >= b;
        case BinaryOp::kAnd:
        case BinaryOp::kOr: break;  // handled above
      }
      throw EvalError("unreachable binary operator");
    }
  }
  throw EvalError("unreachable expression kind");
}

namespace {

void executeStmt(const Stmt& s, Environment& env) {
  switch (s.kind) {
    case StmtKind::kVarDecl:
      break;  // state persists between activations
    case StmtKind::kAssign:
      env.set(s.name, evaluate(*s.expr, env));
      break;
    case StmtKind::kIf: {
      const auto& body =
          evaluate(*s.expr, env) != 0 ? s.thenBody : s.elseBody;
      for (const StmtPtr& t : body) executeStmt(*t, env);
      break;
    }
  }
}

}  // namespace

void execute(const Program& p, Environment& env) {
  for (const StmtPtr& s : p.statements) executeStmt(*s, env);
}

void initializeState(const Program& p, Environment& env) {
  for (const StmtPtr& s : p.statements)
    if (s->kind == StmtKind::kVarDecl)
      env.set(s->name, evaluate(*s->expr, env));
}

}  // namespace eblocks::behavior
