// Recursive-descent parser for the behavior DSL.
//
// Grammar (C-like precedence):
//   program   := stmt*
//   stmt      := 'var' IDENT '=' expr ';'
//              | IDENT '=' expr ';'
//              | 'if' '(' expr ')' block ('else' (block | if-stmt))?
//   block     := '{' stmt* '}'
//   expr      := or
//   or        := and ('||' and)*
//   and       := equality ('&&' equality)*
//   equality  := rel (('=='|'!=') rel)*
//   rel       := add (('<'|'<='|'>'|'>=') add)*
//   add       := mul (('+'|'-') mul)*
//   mul       := unary (('*'|'/'|'%') unary)*
//   unary     := ('!'|'-') unary | primary
//   primary   := INT | 'true' | 'false' | IDENT | '(' expr ')'
#ifndef EBLOCKS_BEHAVIOR_PARSER_H_
#define EBLOCKS_BEHAVIOR_PARSER_H_

#include <stdexcept>
#include <string>
#include <string_view>

#include "behavior/ast.h"

namespace eblocks::behavior {

/// Thrown on syntactically invalid programs.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_, column_;
};

/// Parses a full behavior program.  Throws LexError / ParseError.
Program parse(std::string_view source);

/// Parses a single expression (useful in tests).
ExprPtr parseExpression(std::string_view source);

}  // namespace eblocks::behavior

#endif  // EBLOCKS_BEHAVIOR_PARSER_H_
