#include "behavior/printer.h"

#include <string>

namespace eblocks::behavior {

namespace {

std::string ind(int n) { return std::string(static_cast<std::size_t>(n) * 2, ' '); }

}  // namespace

std::string toSource(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return std::to_string(e.intValue);
    case ExprKind::kVarRef:
      return e.name;
    case ExprKind::kUnary: {
      const std::string inner = toSource(*e.lhs);
      const bool atom = e.lhs->kind == ExprKind::kIntLit ||
                        e.lhs->kind == ExprKind::kVarRef;
      return std::string(toString(e.uop)) + (atom ? inner : "(" + inner + ")");
    }
    case ExprKind::kBinary: {
      auto side = [](const Expr& s) {
        const std::string src = toSource(s);
        const bool atom =
            s.kind == ExprKind::kIntLit || s.kind == ExprKind::kVarRef;
        return atom ? src : "(" + src + ")";
      };
      return side(*e.lhs) + " " + toString(e.bop) + " " + side(*e.rhs);
    }
  }
  return "?";
}

std::string toSource(const Stmt& s, int indent) {
  switch (s.kind) {
    case StmtKind::kVarDecl:
      return ind(indent) + "var " + s.name + " = " + toSource(*s.expr) + ";";
    case StmtKind::kAssign:
      return ind(indent) + s.name + " = " + toSource(*s.expr) + ";";
    case StmtKind::kIf: {
      std::string out =
          ind(indent) + "if (" + toSource(*s.expr) + ") {\n";
      for (const StmtPtr& t : s.thenBody)
        out += toSource(*t, indent + 1) + "\n";
      out += ind(indent) + "}";
      if (!s.elseBody.empty()) {
        out += " else {\n";
        for (const StmtPtr& t : s.elseBody)
          out += toSource(*t, indent + 1) + "\n";
        out += ind(indent) + "}";
      }
      return out;
    }
  }
  return "?";
}

std::string toSource(const Program& p) {
  std::string out;
  for (const StmtPtr& s : p.statements) out += toSource(*s, 0) + "\n";
  return out;
}

}  // namespace eblocks::behavior
