// Hand-written lexer for the behavior DSL.
#ifndef EBLOCKS_BEHAVIOR_LEXER_H_
#define EBLOCKS_BEHAVIOR_LEXER_H_

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "behavior/token.h"

namespace eblocks::behavior {

/// Thrown on malformed source (unknown character, bad literal).
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& what, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_, column_;
};

/// Tokenizes a full program.  `#` and `//` start comments to end of line.
std::vector<Token> lex(std::string_view source);

}  // namespace eblocks::behavior

#endif  // EBLOCKS_BEHAVIOR_LEXER_H_
