#include "behavior/merge.h"

#include <set>
#include <stdexcept>
#include <utility>

namespace eblocks::behavior {

Program mergePrograms(std::vector<Program> parts) {
  Program merged;
  std::vector<StmtPtr> decls, body;
  std::set<std::string> declared;
  for (Program& part : parts) {
    for (StmtPtr& s : part.statements) {
      if (s->kind == StmtKind::kVarDecl) {
        if (!declared.insert(s->name).second)
          throw std::invalid_argument(
              "mergePrograms: duplicate state variable '" + s->name +
              "' (rename before merging)");
        decls.push_back(std::move(s));
      } else {
        body.push_back(std::move(s));
      }
    }
  }
  merged.statements.reserve(decls.size() + body.size());
  for (StmtPtr& s : decls) merged.statements.push_back(std::move(s));
  for (StmtPtr& s : body) merged.statements.push_back(std::move(s));
  return merged;
}

}  // namespace eblocks::behavior
