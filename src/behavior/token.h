// Tokens of the block-behavior DSL.
//
// The paper describes block behaviors "defined in a Java-like language that
// is automatically transformed to a syntax tree" (Section 3.3).  Our DSL is
// a small imperative language: persistent variable declarations, integer
// expressions, assignments, and if/else — enough to express every catalog
// block and every merged programmable-block program.
#ifndef EBLOCKS_BEHAVIOR_TOKEN_H_
#define EBLOCKS_BEHAVIOR_TOKEN_H_

#include <cstdint>
#include <string>

namespace eblocks::behavior {

enum class TokenKind : std::uint8_t {
  kEnd,        // end of input
  kIdent,      // names: inputs, outputs, state variables
  kIntLit,     // decimal integer literal
  kKwVar,      // 'var'
  kKwIf,       // 'if'
  kKwElse,     // 'else'
  kKwTrue,     // 'true'
  kKwFalse,    // 'false'
  kLParen, kRParen, kLBrace, kRBrace, kSemicolon,
  kAssign,     // =
  kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAndAnd, kOrOr, kBang,
};

const char* toString(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;          // identifier spelling
  std::int64_t intValue = 0; // for kIntLit
  int line = 1;              // 1-based source position, for diagnostics
  int column = 1;
};

}  // namespace eblocks::behavior

#endif  // EBLOCKS_BEHAVIOR_TOKEN_H_
