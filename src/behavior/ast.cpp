#include "behavior/ast.h"

#include <utility>

namespace eblocks::behavior {

const char* toString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot: return "!";
    case UnaryOp::kNeg: return "-";
  }
  return "?";
}

const char* toString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

ExprPtr makeIntLit(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->intValue = v;
  return e;
}

ExprPtr makeVarRef(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVarRef;
  e->name = std::move(name);
  return e;
}

ExprPtr makeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->uop = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr makeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr clone(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->intValue = e.intValue;
  out->name = e.name;
  out->uop = e.uop;
  out->bop = e.bop;
  if (e.lhs) out->lhs = clone(*e.lhs);
  if (e.rhs) out->rhs = clone(*e.rhs);
  return out;
}

StmtPtr makeVarDecl(std::string name, ExprPtr init) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kVarDecl;
  s->name = std::move(name);
  s->expr = std::move(init);
  return s;
}

StmtPtr makeAssign(std::string name, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kAssign;
  s->name = std::move(name);
  s->expr = std::move(value);
  return s;
}

StmtPtr makeIf(ExprPtr cond, std::vector<StmtPtr> thenBody,
               std::vector<StmtPtr> elseBody) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kIf;
  s->expr = std::move(cond);
  s->thenBody = std::move(thenBody);
  s->elseBody = std::move(elseBody);
  return s;
}

StmtPtr clone(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->name = s.name;
  if (s.expr) out->expr = clone(*s.expr);
  out->thenBody.reserve(s.thenBody.size());
  for (const StmtPtr& t : s.thenBody) out->thenBody.push_back(clone(*t));
  out->elseBody.reserve(s.elseBody.size());
  for (const StmtPtr& t : s.elseBody) out->elseBody.push_back(clone(*t));
  return out;
}

Program Program::cloneProgram() const {
  Program p;
  p.statements.reserve(statements.size());
  for (const StmtPtr& s : statements) p.statements.push_back(clone(*s));
  return p;
}

namespace {

void collectRefs(const Expr& e, std::set<std::string>& out) {
  if (e.kind == ExprKind::kVarRef) out.insert(e.name);
  if (e.lhs) collectRefs(*e.lhs, out);
  if (e.rhs) collectRefs(*e.rhs, out);
}

void collectRefs(const Stmt& s, std::set<std::string>& out) {
  if (s.expr) collectRefs(*s.expr, out);
  for (const StmtPtr& t : s.thenBody) collectRefs(*t, out);
  for (const StmtPtr& t : s.elseBody) collectRefs(*t, out);
}

void collectAssigns(const Stmt& s, std::set<std::string>& out) {
  if (s.kind == StmtKind::kAssign) out.insert(s.name);
  for (const StmtPtr& t : s.thenBody) collectAssigns(*t, out);
  for (const StmtPtr& t : s.elseBody) collectAssigns(*t, out);
}

}  // namespace

std::vector<std::string> declaredVars(const Program& p) {
  std::vector<std::string> out;
  for (const StmtPtr& s : p.statements)
    if (s->kind == StmtKind::kVarDecl) out.push_back(s->name);
  return out;
}

std::set<std::string> referencedNames(const Program& p) {
  std::set<std::string> out;
  for (const StmtPtr& s : p.statements) collectRefs(*s, out);
  return out;
}

std::set<std::string> assignedNames(const Program& p) {
  std::set<std::string> out;
  for (const StmtPtr& s : p.statements) collectAssigns(*s, out);
  return out;
}

}  // namespace eblocks::behavior
