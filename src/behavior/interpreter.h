// Tree-walking interpreter for behavior programs.
//
// The simulator evaluates a block's syntax tree on every activation; the
// same interpreter evaluates merged programmable-block trees, which is how
// we validate code generation ("the simulator's interpreter evaluates the
// tree in the same manner as a non-programmable block", Section 3.3).
#ifndef EBLOCKS_BEHAVIOR_INTERPRETER_H_
#define EBLOCKS_BEHAVIOR_INTERPRETER_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "behavior/ast.h"

namespace eblocks::behavior {

/// Thrown on runtime faults: unbound names, division by zero.
class EvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Variable store shared between activations of one block instance.
class Environment {
 public:
  /// Reads `name`; throws EvalError if unbound.
  std::int64_t get(const std::string& name) const;

  /// Binds or overwrites `name`.
  void set(const std::string& name, std::int64_t value);

  bool has(const std::string& name) const { return vars_.contains(name); }

  const std::unordered_map<std::string, std::int64_t>& values() const {
    return vars_;
  }

 private:
  std::unordered_map<std::string, std::int64_t> vars_;
};

/// Evaluates an expression in `env`.
std::int64_t evaluate(const Expr& e, const Environment& env);

/// Runs every non-declaration statement top to bottom.  Declarations are
/// skipped: persistent state is initialized once via initializeState().
void execute(const Program& p, Environment& env);

/// Runs the `var` declarations only (reset semantics): evaluates each
/// initializer and binds the variable.
void initializeState(const Program& p, Environment& env);

}  // namespace eblocks::behavior

#endif  // EBLOCKS_BEHAVIOR_INTERPRETER_H_
