// Pretty-printer: AST -> DSL source.  Round-trips through the parser, which
// the tests rely on, and renders merged programs for humans and goldens.
#ifndef EBLOCKS_BEHAVIOR_PRINTER_H_
#define EBLOCKS_BEHAVIOR_PRINTER_H_

#include <string>

#include "behavior/ast.h"

namespace eblocks::behavior {

/// Renders an expression with minimal parentheses (fully parenthesized
/// compound subexpressions; atoms bare).
std::string toSource(const Expr& e);

/// Renders a statement (multi-line for if/else), indented by `indent`
/// levels of two spaces.
std::string toSource(const Stmt& s, int indent = 0);

/// Renders a whole program.
std::string toSource(const Program& p);

}  // namespace eblocks::behavior

#endif  // EBLOCKS_BEHAVIOR_PRINTER_H_
