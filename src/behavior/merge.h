// Program merging: concatenates block programs into one program.
//
// The code generator orders the per-block syntax trees by non-decreasing
// level and splices them into a single tree; declarations are hoisted to
// the top so merged state keeps reset semantics.
#ifndef EBLOCKS_BEHAVIOR_MERGE_H_
#define EBLOCKS_BEHAVIOR_MERGE_H_

#include <vector>

#include "behavior/ast.h"

namespace eblocks::behavior {

/// Concatenates `parts` in order into one program.  All `var` declarations
/// are hoisted (in encounter order) ahead of the executable statements.
/// Callers are responsible for renaming name clashes beforehand (see
/// rename.h); duplicate declarations after the merge throw
/// std::invalid_argument.
Program mergePrograms(std::vector<Program> parts);

}  // namespace eblocks::behavior

#endif  // EBLOCKS_BEHAVIOR_MERGE_H_
