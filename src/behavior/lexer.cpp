#include "behavior/lexer.h"

#include <cctype>
#include <unordered_map>

namespace eblocks::behavior {

const char* toString(TokenKind k) {
  switch (k) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer";
    case TokenKind::kKwVar: return "'var'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwTrue: return "'true'";
    case TokenKind::kKwFalse: return "'false'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kBang: return "'!'";
  }
  return "?";
}

LexError::LexError(const std::string& what, int line, int column)
    : std::runtime_error("lex error at " + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + what),
      line_(line),
      column_(column) {}

namespace {

const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> kw = {
      {"var", TokenKind::kKwVar},
      {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},
      {"true", TokenKind::kKwTrue},
      {"false", TokenKind::kKwFalse},
  };
  return kw;
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1, col = 1;
  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k, ++i) {
      if (i < src.size() && src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  auto push = [&](TokenKind kind, std::size_t len) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = col;
    t.text = std::string(src.substr(i, len));
    out.push_back(t);
    advance(len);
  };
  while (i < src.size()) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < src.size() && src[i + 1] == '/')) {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t len = 0;
      std::int64_t v = 0;
      while (i + len < src.size() &&
             std::isdigit(static_cast<unsigned char>(src[i + len]))) {
        v = v * 10 + (src[i + len] - '0');
        if (v > 0x7fffffff)
          throw LexError("integer literal too large", line, col);
        ++len;
      }
      Token t;
      t.kind = TokenKind::kIntLit;
      t.intValue = v;
      t.line = line;
      t.column = col;
      t.text = std::string(src.substr(i, len));
      out.push_back(t);
      advance(len);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t len = 0;
      while (i + len < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i + len])) ||
              src[i + len] == '_'))
        ++len;
      const std::string_view word = src.substr(i, len);
      const auto it = keywords().find(word);
      push(it != keywords().end() ? it->second : TokenKind::kIdent, len);
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    if (two('=', '=')) { push(TokenKind::kEq, 2); continue; }
    if (two('!', '=')) { push(TokenKind::kNe, 2); continue; }
    if (two('<', '=')) { push(TokenKind::kLe, 2); continue; }
    if (two('>', '=')) { push(TokenKind::kGe, 2); continue; }
    if (two('&', '&')) { push(TokenKind::kAndAnd, 2); continue; }
    if (two('|', '|')) { push(TokenKind::kOrOr, 2); continue; }
    switch (c) {
      case '(': push(TokenKind::kLParen, 1); continue;
      case ')': push(TokenKind::kRParen, 1); continue;
      case '{': push(TokenKind::kLBrace, 1); continue;
      case '}': push(TokenKind::kRBrace, 1); continue;
      case ';': push(TokenKind::kSemicolon, 1); continue;
      case '=': push(TokenKind::kAssign, 1); continue;
      case '<': push(TokenKind::kLt, 1); continue;
      case '>': push(TokenKind::kGt, 1); continue;
      case '+': push(TokenKind::kPlus, 1); continue;
      case '-': push(TokenKind::kMinus, 1); continue;
      case '*': push(TokenKind::kStar, 1); continue;
      case '/': push(TokenKind::kSlash, 1); continue;
      case '%': push(TokenKind::kPercent, 1); continue;
      case '!': push(TokenKind::kBang, 1); continue;
      default:
        throw LexError(std::string("unexpected character '") + c + "'", line,
                       col);
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = col;
  out.push_back(end);
  return out;
}

}  // namespace eblocks::behavior
