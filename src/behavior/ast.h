// Abstract syntax trees for block behaviors.
//
// A behavior program is a list of statements evaluated top-to-bottom on
// every block activation (arrival of an input packet or a timer tick).
//   - `var name = <const-expr>;` declares a persistent state variable,
//     initialized once at reset and retained between activations.
//   - assignments write state variables or output ports;
//   - reads reference input ports, state variables, or the builtin `tick`
//     (1 when the activation is a timer tick).
//
// The code generator (src/codegen) merges programs of all blocks in a
// partition by concatenating their statement lists in level order after
// variable renaming, exactly as Section 3.3 describes.
#ifndef EBLOCKS_BEHAVIOR_AST_H_
#define EBLOCKS_BEHAVIOR_AST_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace eblocks::behavior {

// --- expressions -----------------------------------------------------------

enum class ExprKind : std::uint8_t { kIntLit, kVarRef, kUnary, kBinary };

enum class UnaryOp : std::uint8_t { kNot, kNeg };

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* toString(UnaryOp op);
const char* toString(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  std::int64_t intValue = 0;  // kIntLit
  std::string name;           // kVarRef
  UnaryOp uop = UnaryOp::kNot;
  BinaryOp bop = BinaryOp::kAdd;
  ExprPtr lhs;  // kUnary operand / kBinary left
  ExprPtr rhs;  // kBinary right
};

ExprPtr makeIntLit(std::int64_t v);
ExprPtr makeVarRef(std::string name);
ExprPtr makeUnary(UnaryOp op, ExprPtr operand);
ExprPtr makeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

ExprPtr clone(const Expr& e);

// --- statements --------------------------------------------------------------

enum class StmtKind : std::uint8_t { kVarDecl, kAssign, kIf };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  std::string name;  // kVarDecl/kAssign: target variable
  ExprPtr expr;      // kVarDecl init / kAssign rhs / kIf condition
  std::vector<StmtPtr> thenBody;  // kIf
  std::vector<StmtPtr> elseBody;  // kIf
};

StmtPtr makeVarDecl(std::string name, ExprPtr init);
StmtPtr makeAssign(std::string name, ExprPtr value);
StmtPtr makeIf(ExprPtr cond, std::vector<StmtPtr> thenBody,
               std::vector<StmtPtr> elseBody = {});

StmtPtr clone(const Stmt& s);

// --- programs ----------------------------------------------------------------

struct Program {
  std::vector<StmtPtr> statements;

  Program() = default;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  Program cloneProgram() const;
};

/// Names of variables declared with `var` in program order.
std::vector<std::string> declaredVars(const Program& p);

/// Every name referenced (read) anywhere in the program.
std::set<std::string> referencedNames(const Program& p);

/// Every name assigned (written) anywhere in the program, excluding
/// declarations.
std::set<std::string> assignedNames(const Program& p);

}  // namespace eblocks::behavior

#endif  // EBLOCKS_BEHAVIOR_AST_H_
